package experiments

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"mrskyline/internal/baseline"
	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/rpcexec"
	"mrskyline/internal/spill"
	"mrskyline/internal/tuple"
)

// ExecBenchConfig shapes the executor-backend comparison bench.
type ExecBenchConfig struct {
	// Workers is the worker-process count of the process backend; the
	// in-process engine runs on a matching Workers×1 simulated cluster so
	// both backends see the same task layout. Defaults to 4.
	Workers int
	// Card and Dim shape the workload; defaults are the scaled paper
	// workload (anti-correlated, 4000 × 4d).
	Card int
	Dim  int
	// Seed makes data generation deterministic; defaults to 1.
	Seed int64
	// TraceDir, when set, makes worker processes write Chrome traces there.
	TraceDir string
	// SpillBudget and SpillDir, when SpillBudget > 0, run both backends
	// through the external-memory shuffle (see spill.Config).
	SpillBudget int64
	SpillDir    string
	// Trace, when set, is used as the master-side tracer (spans plus the
	// rpc.* metrics the record reports); otherwise a private one is used.
	Trace *obs.Tracer
}

func (c ExecBenchConfig) withDefaults() ExecBenchConfig {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Card == 0 {
		c.Card = 4000
	}
	if c.Dim == 0 {
		c.Dim = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExecAlgoResult compares one algorithm across the two backends.
type ExecAlgoResult struct {
	Algorithm string `json:"algorithm"`
	// InprocSec / ProcessSec are host wall-clock seconds per backend.
	InprocSec  float64 `json:"inproc_seconds"`
	ProcessSec float64 `json:"process_seconds"`
	// SkylineSize and OutputBytes describe the (identical) result.
	SkylineSize int  `json:"skyline_size"`
	OutputBytes int  `json:"output_bytes"`
	Identical   bool `json:"identical"`
	// ShuffleBytes is the reducer-payload volume (same counter on both
	// backends, so it must agree).
	InprocShuffleBytes  int64 `json:"inproc_shuffle_bytes"`
	ProcessShuffleBytes int64 `json:"process_shuffle_bytes"`
}

// ExecBenchRecord is the BENCH_executor.json payload: the in-process
// engine and the rpcexec multi-process backend measured on the same paper
// workload, with the process backend's RPC telemetry.
type ExecBenchRecord struct {
	Workers      int    `json:"workers"`
	Card         int    `json:"card"`
	Dim          int    `json:"dim"`
	Seed         int64  `json:"seed"`
	Distribution string `json:"distribution"`

	Algorithms []ExecAlgoResult `json:"algorithms"`

	// RPC telemetry of the process backend across all runs.
	WireShuffleBytes int64 `json:"wire_shuffle_bytes"`
	LeasesGranted    int64 `json:"leases_granted"`
	LeasesExpired    int64 `json:"leases_expired"`
	WorkerDeaths     int64 `json:"worker_deaths"`
	HeartbeatRTTP50  int64 `json:"heartbeat_rtt_p50_ns"`
}

// execBenchAlgo is one algorithm of the comparison, parameterized over the
// executor backend.
type execBenchAlgo struct {
	name string
	run  func(exec mapreduce.Executor, workers int, data tupleList) (tuple.List, int64, error)
}

func execBenchAlgos() []execBenchAlgo {
	coreRun := func(f func(core.Config, tuple.List) (tuple.List, *core.Stats, error)) func(mapreduce.Executor, int, tupleList) (tuple.List, int64, error) {
		return func(exec mapreduce.Executor, workers int, data tupleList) (tuple.List, int64, error) {
			cfg := core.Config{Engine: exec, NumMappers: workers, NumReducers: workers}
			sky, st, err := f(cfg, data)
			if err != nil {
				return nil, 0, err
			}
			return sky, st.ShuffleBytes, nil
		}
	}
	return []execBenchAlgo{
		{AlgoGPSRS, coreRun(core.GPSRS)},
		{AlgoGPMRS, coreRun(core.GPMRS)},
		{AlgoBNL, func(exec mapreduce.Executor, workers int, data tupleList) (tuple.List, int64, error) {
			cfg := baseline.Config{Engine: exec, NumMappers: workers}
			sky, st, err := baseline.MRBNL(cfg, data)
			if err != nil {
				return nil, 0, err
			}
			return sky, st.ShuffleBytes, nil
		}},
	}
}

// RunExecutorBench measures MR-GPSRS, MR-GPMRS and MR-BNL on the
// in-process engine and on the multi-process rpcexec backend, asserting
// byte-identical skylines — the determinism contract of DESIGN.md §12 —
// and reporting per-backend wall times plus the process backend's RPC
// telemetry. Map and reduce task counts are pinned to the worker count on
// both backends so the task layouts coincide.
func RunExecutorBench(cfg ExecBenchConfig) (*ExecBenchRecord, error) {
	cfg = cfg.withDefaults()
	data := datagen.Generate(datagen.AntiCorrelated, cfg.Card, cfg.Dim, cfg.Seed)

	// In-process backend: Workers nodes × 1 slot, wall-clock (no SimConfig),
	// matching the process backend's one-task-per-worker concurrency.
	cl, err := cluster.Uniform(cfg.Workers, 1)
	if err != nil {
		return nil, err
	}
	eng := mapreduce.NewEngine(cl)
	if cfg.SpillBudget > 0 {
		dir := cfg.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		eng.Spill = &spill.Config{Dir: dir, Budget: cfg.SpillBudget, Stats: &spill.Stats{}}
		cfg.SpillDir = dir
	}

	tr := cfg.Trace
	if tr == nil {
		tr = obs.New()
	}
	pe, err := rpcexec.New(rpcexec.Config{
		Workers:     cfg.Workers,
		Trace:       tr,
		TraceDir:    cfg.TraceDir,
		SpillBudget: cfg.SpillBudget,
		SpillDir:    cfg.SpillDir,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: starting process executor: %w", err)
	}
	defer pe.Close()

	rec := &ExecBenchRecord{
		Workers:      cfg.Workers,
		Card:         cfg.Card,
		Dim:          cfg.Dim,
		Seed:         cfg.Seed,
		Distribution: "anticorrelated",
	}
	for _, a := range execBenchAlgos() {
		start := time.Now()
		skyIn, shufIn, err := a.run(eng, cfg.Workers, data)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on in-process engine: %w", a.name, err)
		}
		inSec := time.Since(start).Seconds()

		start = time.Now()
		skyProc, shufProc, err := a.run(pe, cfg.Workers, data)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on process executor: %w", a.name, err)
		}
		procSec := time.Since(start).Seconds()

		encIn, encProc := tuple.EncodeList(skyIn), tuple.EncodeList(skyProc)
		identical := bytes.Equal(encIn, encProc)
		rec.Algorithms = append(rec.Algorithms, ExecAlgoResult{
			Algorithm:           a.name,
			InprocSec:           inSec,
			ProcessSec:          procSec,
			SkylineSize:         len(skyIn),
			OutputBytes:         len(encIn),
			Identical:           identical,
			InprocShuffleBytes:  shufIn,
			ProcessShuffleBytes: shufProc,
		})
		if !identical {
			return rec, fmt.Errorf("experiments: %s output differs between backends (%d vs %d tuples)", a.name, len(skyIn), len(skyProc))
		}
	}

	snap := tr.Metrics().Snapshot()
	for _, c := range snap.Counters {
		switch c.Name {
		case "rpc.shuffle.wire.bytes":
			rec.WireShuffleBytes = c.Value
		case "rpc.lease.granted":
			rec.LeasesGranted = c.Value
		case "rpc.lease.expired":
			rec.LeasesExpired = c.Value
		case "rpc.worker.deaths":
			rec.WorkerDeaths = c.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "rpc.heartbeat.rtt.ns" {
			rec.HeartbeatRTTP50 = h.P50
		}
	}
	return rec, nil
}

// WriteExecBenchJSON writes rec as indented JSON to path.
func WriteExecBenchJSON(path string, rec *ExecBenchRecord) error {
	return writeJSONFile(path, rec)
}
