package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mrskyline/internal/datagen"
	"mrskyline/internal/obs"
)

// BenchRecord is one figure regeneration measured for performance
// trajectory tracking: cmd/skybench -json writes one BENCH_<figure>.json
// per figure so later changes can be compared against this baseline —
// host cost (wall nanoseconds and heap allocations for the whole figure),
// the simulated cluster time of every sweep point (the table cells), and
// per-algorithm probes of shuffle volume on a fixed workload.
type BenchRecord struct {
	// Figure is the experiment id (e.g. "fig7"); Name the display title.
	Figure string `json:"figure"`
	Name   string `json:"name"`
	// Setup echo, so records are only compared like-for-like.
	Scale              float64 `json:"scale"`
	Nodes              int     `json:"nodes"`
	SlotsPerNode       int     `json:"slots_per_node"`
	Seed               int64   `json:"seed"`
	MeasureParallelism int     `json:"measure_parallelism"`
	// FaultSeed/FaultRate echo the fault-injection knobs (0 = fault-free
	// run), so chaos benches never get compared against clean baselines.
	FaultSeed int64   `json:"fault_seed,omitempty"`
	FaultRate float64 `json:"fault_rate,omitempty"`
	// WallNs is host wall-clock for the full figure (ns/op at -benchtime=1x).
	WallNs int64 `json:"wall_ns"`
	// Allocs and AllocBytes are the heap mallocs and bytes the figure run
	// performed (allocs/op at -benchtime=1x).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Tables are the figure's sweep points; runtime cells are simulated
	// cluster seconds unless the setup ran with NoSim.
	Tables []BenchTable `json:"tables"`
	// Probes are fixed-workload per-algorithm measurements (shuffle bytes,
	// simulated time), independent of the figure's own sweep.
	Probes []AlgoProbe `json:"algo_probes,omitempty"`
	// Metrics is the obs registry snapshot for this figure's run — per-phase
	// task/shuffle histograms and algorithm-phase timings — present only
	// when the setup carries a tracer. Sections are sorted by name, so two
	// identical deterministic runs serialize byte-identically.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// BenchTable mirrors Table in a JSON-friendly shape.
type BenchTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AlgoProbe is one algorithm measured on the fixed probe workload.
type AlgoProbe struct {
	Algorithm      string  `json:"algorithm"`
	SimulatedSec   float64 `json:"simulated_seconds"`
	WallSec        float64 `json:"wall_seconds"`
	ShuffleBytes   int64   `json:"shuffle_bytes"`
	DominanceTests int64   `json:"dominance_tests"`
	SkylineSize    int     `json:"skyline_size"`
	// Fault-injection telemetry (omitted on fault-free runs).
	TaskFailures        int64 `json:"task_failures,omitempty"`
	SpeculativeLaunched int64 `json:"speculative_launched,omitempty"`
	SpeculativeWon      int64 `json:"speculative_won,omitempty"`
	NodeFailures        int64 `json:"node_failures,omitempty"`
	ShuffleCorruptions  int64 `json:"shuffle_corruptions,omitempty"`
}

// RunFigureBench regenerates one figure while measuring host wall time and
// heap allocations, returning both the bench record and the figure result
// (for printing).
func RunFigureBench(name string, s Setup) (*BenchRecord, *FigureResult, error) {
	s = s.withDefaults()
	// Per-figure metrics: clear the shared registry so this record's
	// snapshot covers exactly this figure's jobs (spans keep accumulating
	// on the tracer's timeline).
	s.Trace.ResetMetrics()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := RunFigure(name, s)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, nil, err
	}
	rec := &BenchRecord{
		Figure:             name,
		Name:               res.Name,
		Scale:              s.Scale,
		Nodes:              s.Nodes,
		SlotsPerNode:       s.SlotsPerNode,
		Seed:               s.Seed,
		MeasureParallelism: s.MeasureParallelism,
		FaultSeed:          s.FaultSeed,
		FaultRate:          s.FaultRate,
		WallNs:             wall.Nanoseconds(),
		Allocs:             after.Mallocs - before.Mallocs,
		AllocBytes:         after.TotalAlloc - before.TotalAlloc,
	}
	for _, tab := range res.Tables {
		rec.Tables = append(rec.Tables, BenchTable{Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows})
	}
	if s.Trace.Enabled() {
		snap := s.Trace.Metrics().Snapshot()
		rec.Metrics = &snap
	}
	return rec, res, nil
}

// probeCard and probeDim fix the probe workload: small enough to be noise
// next to any figure, large enough that shuffle volumes are meaningful.
const (
	probeCard = 2000
	probeDim  = 4
)

// ProbeAlgorithms measures every algorithm end-to-end on the fixed probe
// workload (independent data, card 2000, d 4), reporting the quantities the
// figures do not expose per cell: shuffle bytes and dominance tests.
func ProbeAlgorithms(s Setup) ([]AlgoProbe, error) {
	s = s.withDefaults()
	data := datagen.Generate(datagen.Independent, probeCard, probeDim, s.Seed)
	out := make([]AlgoProbe, 0, len(AllAlgorithms()))
	for _, algo := range AllAlgorithms() {
		m, err := runAlgorithm(algo, s, data, defaultMeasureOpts())
		if err != nil {
			return nil, fmt.Errorf("experiments: probing %s: %w", algo, err)
		}
		out = append(out, AlgoProbe{
			Algorithm:           m.Algo,
			SimulatedSec:        m.Runtime.Seconds(),
			WallSec:             m.WallTime.Seconds(),
			ShuffleBytes:        m.ShuffleBytes,
			DominanceTests:      m.DominanceTests,
			SkylineSize:         m.SkylineSize,
			TaskFailures:        m.TaskFailures,
			SpeculativeLaunched: m.SpeculativeLaunched,
			SpeculativeWon:      m.SpeculativeWon,
			NodeFailures:        m.NodeFailures,
			ShuffleCorruptions:  m.ShuffleCorruptions,
		})
	}
	return out, nil
}

// WriteBenchJSON writes rec as indented JSON to path.
func WriteBenchJSON(path string, rec *BenchRecord) error {
	return writeJSONFile(path, rec)
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
