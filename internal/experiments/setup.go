// Package experiments regenerates the paper's evaluation (Section 7):
// one runner per figure, each producing the same rows/series the paper
// reports, measured on the simulated MapReduce substrate.
//
// Absolute runtimes are not comparable to the paper's Hadoop cluster; the
// harness reproduces the *shapes* — which algorithm wins where, how curves
// scale, and where crossovers fall. Cardinalities are scaled down by
// Setup.Scale so the full suite runs on a laptop; pass Scale = 1 for the
// paper's full parameters.
package experiments

import (
	"fmt"
	"os"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/obs"
	"mrskyline/internal/spill"
)

// ValidateFaultConfig checks the fault-injection knobs as front ends
// (skybench, skyreport) receive them: rate must lie in [0, 1], and a seed
// is only meaningful when a rate enables the fault plan. seedSet reports
// whether the user set the seed explicitly (a zero seed means "use the
// data seed", so presence cannot be inferred from the value).
func ValidateFaultConfig(rate float64, seedSet bool) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("experiments: fault rate %v outside [0, 1]", rate)
	}
	if seedSet && rate == 0 {
		return fmt.Errorf("experiments: fault seed set but fault rate is 0 (set a rate in (0, 1] to enable fault injection)")
	}
	return nil
}

// ValidateSpillConfig checks the external-memory shuffle knobs as front
// ends receive them. budgetSet and dirSet report whether the user passed
// the flags explicitly (the zero budget means "all in RAM", so presence
// cannot be inferred from the value); the flag-presence rules are CLI
// concerns and live here, while the budget/dir pairing rule is the shared
// spill.ValidateSetup every front end enforces.
func ValidateSpillConfig(budget int64, dir string, budgetSet, dirSet bool) error {
	if budgetSet && budget <= 0 {
		return fmt.Errorf("experiments: spill budget must be positive, got %d", budget)
	}
	if dirSet && dir == "" {
		return fmt.Errorf("experiments: spill dir set but empty")
	}
	if err := spill.ValidateSetup(budget, dir); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// ValidateWorkers checks a worker-process count as front ends receive it.
func ValidateWorkers(workers int) error {
	if workers < 1 {
		return fmt.Errorf("experiments: worker count must be >= 1, got %d", workers)
	}
	return nil
}

// Setup fixes the simulated cluster and sweep-independent parameters of an
// experiment run.
type Setup struct {
	// Nodes is the simulated cluster size; defaults to 13, the paper's
	// cluster ("a cluster of thirteen commodity machines").
	Nodes int
	// SlotsPerNode is the per-node task slot count; defaults to 2.
	SlotsPerNode int
	// Mappers is the map task count; 0 uses all slots.
	Mappers int
	// Reducers is the reduce task count for MR-GPMRS; 0 uses one per node,
	// the paper's default.
	Reducers int
	// PPD fixes the grid granularity; 0 lets the Section 3.3 job choose.
	PPD int
	// Seed makes data generation deterministic; defaults to 1.
	Seed int64
	// Scale multiplies the paper's cardinalities (0 < Scale ≤ 1);
	// defaults to DefaultScale. Scaled cardinalities are floored at 1000.
	Scale float64
	// SkipHeavy skips algorithm/workload combinations that the paper
	// itself reports as not terminating "in a reasonable period of time"
	// (single-reducer algorithms on high-dimensional anti-correlated
	// data); such cells appear as "DNF". Default true; see NoSkip.
	NoSkip bool
	// NoSim disables simulated-time accounting, reporting raw host
	// wall-clock instead. By default runtimes are simulated cluster
	// makespans (task durations scheduled over the cluster's slots plus a
	// 100 Mbit/s shuffle and Hadoop-style task/job overheads), which is
	// what the paper's runtime axes measure.
	NoSim bool
	// SimTaskStartup, SimJobSetup and SimBandwidth override the simulated
	// cluster's fixed costs (zero keeps the mapreduce.SimConfig defaults:
	// 1s task startup, 5s job setup, 12.5 MB/s links).
	SimTaskStartup time.Duration
	SimJobSetup    time.Duration
	SimBandwidth   int64
	// MeasureParallelism bounds how many tasks the engine measures
	// concurrently in simulated-time mode: 0 = min(GOMAXPROCS, cluster
	// slots) — the fast default for development sweeps — and 1 = strict
	// serial isolation, which publication runs (cmd/skyreport) use. See
	// mapreduce.SimConfig.MeasureParallelism.
	MeasureParallelism int
	// PaperCluster replaces the uniform Nodes×SlotsPerNode cluster with the
	// paper's exact heterogeneous machine mix (twelve 2.8 GHz nodes plus
	// one 2.13 GHz node), honouring SlotsPerNode.
	PaperCluster bool
	// FaultRate, when positive, runs every job under a deterministic
	// mapreduce.FaultPlan: the rate is used for per-attempt crashes,
	// per-node stragglers and shuffle-segment corruption, with speculative
	// execution enabled. Jobs then execute on the engine's virtual fault
	// clock, so results are reproducible bit-for-bit from FaultSeed.
	FaultRate float64
	// FaultSeed seeds the fault plan (only meaningful with FaultRate > 0);
	// 0 uses the data seed.
	FaultSeed int64
	// SpillBudget, when positive, runs every job through the
	// external-memory shuffle: map outputs spill to sorted run files under
	// SpillDir whenever more than SpillBudget bytes would sit resident, and
	// reduce inputs arrive through a multi-round merge whose fan-in
	// SpillFanIn caps (0 uses the spill package default). Zero keeps the
	// all-in-RAM shuffle; results are byte-identical either way.
	SpillBudget int64
	SpillDir    string
	SpillFanIn  int
	// Trace, when non-nil, is attached to every engine the run builds:
	// spans from all jobs accumulate on its shared timeline (virtual-clock
	// jobs are serialized onto it via the tracer's virtual base), and
	// metrics land in its registry. Nil disables tracing.
	Trace *obs.Tracer
}

// DefaultScale is the default cardinality scale factor: 2×10⁶ becomes
// 4×10⁴, keeping every figure's full sweep within laptop minutes.
const DefaultScale = 0.02

func (s Setup) withDefaults() Setup {
	if s.Nodes == 0 {
		s.Nodes = 13
	}
	if s.SlotsPerNode == 0 {
		s.SlotsPerNode = 2
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Scale == 0 {
		s.Scale = DefaultScale
	}
	return s
}

// newEngine builds a fresh engine (fresh cluster) for one measurement, so
// runs never share scheduler state.
func (s Setup) newEngine() (*mapreduce.Engine, error) {
	var (
		c   *cluster.Cluster
		err error
	)
	if s.PaperCluster {
		c, err = cluster.Paper(s.SlotsPerNode)
	} else {
		c, err = cluster.Uniform(s.Nodes, s.SlotsPerNode)
	}
	if err != nil {
		return nil, err
	}
	eng := mapreduce.NewEngine(c)
	if !s.NoSim {
		eng.Sim = &mapreduce.SimConfig{
			TaskStartup:        s.SimTaskStartup,
			JobSetup:           s.SimJobSetup,
			NetBandwidth:       s.SimBandwidth,
			MeasureParallelism: s.MeasureParallelism,
		}
	}
	if s.FaultRate > 0 {
		seed := s.FaultSeed
		if seed == 0 {
			seed = s.Seed
		}
		eng.Faults = &mapreduce.FaultPlan{
			Seed:          seed,
			CrashRate:     s.FaultRate,
			StragglerRate: s.FaultRate,
			CorruptRate:   s.FaultRate,
			Speculative:   &mapreduce.SpeculativeConfig{},
		}
	}
	if s.SpillBudget > 0 {
		dir := s.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		eng.Spill = &spill.Config{
			Dir:    dir,
			Budget: s.SpillBudget,
			FanIn:  s.SpillFanIn,
			Stats:  &spill.Stats{},
		}
	}
	eng.SetTrace(s.Trace)
	return eng, nil
}

// card scales one of the paper's cardinalities.
func (s Setup) card(paperCard int) int {
	c := int(float64(paperCard) * s.Scale)
	if c < 1000 {
		c = 1000
	}
	if c > paperCard {
		c = paperCard
	}
	return c
}

// dataset generates the experiment dataset for one point, deterministically
// from the setup seed and the point's shape.
func (s Setup) dataset(dist datagen.Distribution, paperCard, d int) (tupleList, int) {
	card := s.card(paperCard)
	seed := s.Seed + int64(dist)*1_000_003 + int64(card)*31 + int64(d)
	return datagen.Generate(dist, card, d, seed), card
}

// shouldSkip reproduces the paper's "cannot terminate in a reasonable
// period of time" exclusions at scaled size: single-reducer baselines on
// anti-correlated data of dimensionality ≥ 7 (Figures 8b/8d), and MR-GPSRS
// on anti-correlated d ≥ 8 at the highest cardinalities (Figure 9d).
func (s Setup) shouldSkip(algo string, dist datagen.Distribution, card, d int) bool {
	if s.NoSkip || dist != datagen.AntiCorrelated {
		return false
	}
	switch algo {
	case AlgoBNL, AlgoSFS, AlgoAngle:
		return d >= 7 && card >= 20_000
	case AlgoGPSRS:
		return d >= 8 && card >= 50_000
	default:
		return false
	}
}

// fmtDuration renders a runtime cell.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
