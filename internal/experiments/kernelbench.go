package experiments

import (
	"math/rand"
	"time"

	"mrskyline/internal/skyline"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// KernelPoint is one (dimensionality, window size) cell of the dominance
// kernel micro-benchmark: scalar reference versus columnar block kernel
// on a full-window insertion scan and a full-window membership scan.
type KernelPoint struct {
	Dim    int `json:"dim"`
	Window int `json:"window"`
	// InsertNs is the per-operation cost of one window insertion whose
	// scan examines every window tuple (the candidate is dominated by the
	// last window tuple, so the window never changes).
	ScalarInsertNs   float64 `json:"scalar_insert_ns"`
	ColumnarInsertNs float64 `json:"columnar_insert_ns"`
	InsertSpeedup    float64 `json:"insert_speedup"`
	// DominatedNs is the per-operation cost of the pure membership check
	// against a window no tuple of which dominates the probe.
	ScalarDominatedNs   float64 `json:"scalar_dominated_ns"`
	ColumnarDominatedNs float64 `json:"columnar_dominated_ns"`
	DominatedSpeedup    float64 `json:"dominated_speedup"`
}

// KernelBenchRecord is the BENCH_kernel.json payload: the full
// (dim, window) sweep plus the acceptance gate — the minimum insertion
// speedup over the cells with window ≥ 256 and dim ≤ 6, the regime the
// columnar kernel was built for.
type KernelBenchRecord struct {
	BlockSize int           `json:"block_size"`
	Seed      int64         `json:"seed"`
	Dims      []int         `json:"dims"`
	Windows   []int         `json:"windows"`
	Points    []KernelPoint `json:"points"`
	// GateMinInsertSpeedup is min(insert_speedup) over window ≥ 256,
	// dim ≤ 6.
	GateMinInsertSpeedup float64 `json:"gate_min_insert_speedup"`
}

// kernelBenchTarget is the wall time each measurement loop aims for.
// Long enough to amortize timer overhead, short enough that the full
// 5×5 sweep (100 measurements) stays in the low seconds.
const kernelBenchTarget = 5 * time.Millisecond

// equalSumRows builds a dominance-free window of exactly n random
// d-dimensional tuples: every tuple is normalized to the same coordinate
// sum, and dominance implies a strictly smaller sum, so the rows are
// pairwise incomparable. This pins the window size without sampling a
// skyline, and a scan over it never terminates early — the steady-state
// worst case the kernel exists for.
func equalSumRows(rng *rand.Rand, n, d int) tuple.List {
	out := make(tuple.List, n)
	for i := range out {
		t := make(tuple.Tuple, d)
		var sum float64
		for k := range t {
			t[k] = 0.1 + rng.Float64()
			sum += t[k]
		}
		for k := range t {
			t[k] *= float64(d) / (2 * sum)
		}
		out[i] = t
	}
	return out
}

// measureNs times op (which performs one operation per call) until the
// target wall time is reached, returning nanoseconds per operation.
func measureNs(op func()) float64 {
	for _, warm := 0, 0; warm < 16; warm++ {
		op()
	}
	iters := 0
	start := time.Now()
	for time.Since(start) < kernelBenchTarget {
		for i := 0; i < 64; i++ {
			op()
		}
		iters += 64
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// RunKernelBench measures the scalar and columnar dominance kernels over
// the full (dim, window) sweep.
func RunKernelBench(seed int64) *KernelBenchRecord {
	rec := &KernelBenchRecord{
		BlockSize: window.BlockSize,
		Seed:      seed,
		Dims:      []int{2, 4, 6, 8, 10},
		Windows:   []int{16, 64, 256, 1024, 4096},
	}
	rec.GateMinInsertSpeedup = 0
	for _, d := range rec.Dims {
		for _, n := range rec.Windows {
			rng := rand.New(rand.NewSource(seed + int64(d*1_000_000+n)))
			rows := equalSumRows(rng, n, d)
			probe := equalSumRows(rng, 1, d)[0]
			cand := rows[n-1].Clone()
			for k := range cand {
				cand[k] += 1e-9
			}
			w := window.FromList(d, rows)

			p := KernelPoint{Dim: d, Window: n}
			var c skyline.Count
			scalarRows := rows
			p.ScalarInsertNs = measureNs(func() { scalarRows = skyline.InsertTuple(cand, scalarRows, &c) })
			p.ColumnarInsertNs = measureNs(func() { w.Insert(cand, &c) })
			p.ScalarDominatedNs = measureNs(func() {
				for _, u := range rows {
					c.Add(1)
					if tuple.Dominates(u, probe) {
						panic("experiments: probe dominated in kernel bench")
					}
				}
			})
			p.ColumnarDominatedNs = measureNs(func() { w.Dominated(probe, &c) })
			p.InsertSpeedup = p.ScalarInsertNs / p.ColumnarInsertNs
			p.DominatedSpeedup = p.ScalarDominatedNs / p.ColumnarDominatedNs
			rec.Points = append(rec.Points, p)
			if n >= 256 && d <= 6 && (rec.GateMinInsertSpeedup == 0 || p.InsertSpeedup < rec.GateMinInsertSpeedup) {
				rec.GateMinInsertSpeedup = p.InsertSpeedup
			}
		}
	}
	return rec
}

// WriteKernelBenchJSON writes rec as indented JSON to path.
func WriteKernelBenchJSON(path string, rec *KernelBenchRecord) error {
	return writeJSONFile(path, rec)
}
