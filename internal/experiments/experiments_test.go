package experiments

import (
	"strconv"
	"strings"
	"testing"

	"mrskyline/internal/datagen"
)

// tinySetup keeps every figure sweep at 1000-tuple datasets on a small
// cluster so the whole suite runs in seconds.
func tinySetup() Setup {
	return Setup{Nodes: 4, SlotsPerNode: 2, Seed: 7, Scale: 0.0001}
}

func TestRunAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range FigureNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunFigure(name, tinySetup())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
					t.Errorf("table %q is empty", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %q: ragged row %v", tab.Title, row)
					}
				}
				// Render both formats without panicking.
				if tab.String() == "" || tab.CSV() == "" {
					t.Errorf("table %q renders empty", tab.Title)
				}
			}
		})
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("fig99", tinySetup()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFigureShapes(t *testing.T) {
	res, err := RunFigure("fig10", tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 5 {
		t.Errorf("fig10 rows = %d, want 5 reducer counts", len(tab.Rows))
	}
	if tab.Cell(0, "reducers") != "1" || tab.Cell(4, "reducers") != "17" {
		t.Errorf("fig10 reducer sweep wrong: %v", tab.Rows)
	}
	for i := range tab.Rows {
		for _, col := range []string{"independent", "anticorrelated"} {
			v := tab.Cell(i, col)
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Errorf("fig10 %s row %d = %q, not a runtime", col, i, v)
			}
		}
	}
}

func TestCostValidationEstimateIsUpperBound(t *testing.T) {
	// The paper's Section 7.5 finding: "the estimated cost is higher than
	// the real cost in every case". Verified here at test scale for both
	// phases and both distributions. The reducer bound models one surface
	// per reducer, so it needs the paper's cluster shape (13 nodes → 13
	// reducers ≥ d groups apiece); the 4-node tiny setup would stack
	// several surfaces onto one reducer and legitimately exceed κ_reducer.
	res, err := RunFigure("fig11", Setup{Seed: 7, Scale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range res.Tables {
		for i := range tab.Rows {
			for _, pair := range [][2]string{
				{"measured(indep)", "estimate(indep)"},
				{"measured(anti)", "estimate(anti)"},
			} {
				meas, err1 := strconv.ParseInt(tab.Cell(i, pair[0]), 10, 64)
				est, err2 := strconv.ParseInt(tab.Cell(i, pair[1]), 10, 64)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s row %d: unparseable cells %v", tab.Title, i, tab.Rows[i])
				}
				if meas > est {
					t.Errorf("%s row %d: measured %d exceeds estimate %d", tab.Title, i, meas, est)
				}
			}
		}
	}
}

func TestShouldSkipMirrorsPaperExclusions(t *testing.T) {
	s := tinySetup().withDefaults()
	// Baselines DNF on high-dimensional anti-correlated data at size.
	if !s.shouldSkip(AlgoBNL, datagen.AntiCorrelated, 40_000, 8) {
		t.Error("MR-BNL not skipped on anti d=8")
	}
	if !s.shouldSkip(AlgoAngle, datagen.AntiCorrelated, 40_000, 10) {
		t.Error("MR-Angle not skipped on anti d=10")
	}
	// GPSRS only at d ≥ 8 and high cardinality.
	if !s.shouldSkip(AlgoGPSRS, datagen.AntiCorrelated, 60_000, 9) {
		t.Error("MR-GPSRS not skipped on big anti d=9")
	}
	if s.shouldSkip(AlgoGPSRS, datagen.AntiCorrelated, 10_000, 9) {
		t.Error("MR-GPSRS skipped on small data")
	}
	// GPMRS never skips; independent data never skips.
	if s.shouldSkip(AlgoGPMRS, datagen.AntiCorrelated, 1_000_000, 10) {
		t.Error("MR-GPMRS skipped")
	}
	if s.shouldSkip(AlgoBNL, datagen.Independent, 1_000_000, 10) {
		t.Error("independent data skipped")
	}
	// NoSkip disables all exclusions.
	s.NoSkip = true
	if s.shouldSkip(AlgoBNL, datagen.AntiCorrelated, 1_000_000, 10) {
		t.Error("NoSkip ignored")
	}
}

func TestSetupDefaults(t *testing.T) {
	s := Setup{}.withDefaults()
	if s.Nodes != 13 || s.SlotsPerNode != 2 || s.Seed != 1 || s.Scale != DefaultScale {
		t.Errorf("defaults = %+v", s)
	}
	// Scaled cardinality floors at 1000 and never exceeds the paper's.
	if got := s.card(100_000); got != 2000 {
		t.Errorf("card(1e5) = %d, want 2000", got)
	}
	if got := s.card(10); got != 10 {
		t.Errorf("card(10) = %d, want 10 (capped at paper value)", got)
	}
	big := Setup{Scale: 1}.withDefaults()
	if got := big.card(2_000_000); got != 2_000_000 {
		t.Errorf("card at scale 1 = %d", got)
	}
}

func TestRunAlgorithmAllNames(t *testing.T) {
	s := tinySetup()
	data := datagen.Generate(datagen.Independent, 500, 3, 3)
	var sizes []int
	for _, name := range AllAlgorithms() {
		m, err := RunAlgorithm(name, s, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Runtime <= 0 || m.SkylineSize == 0 {
			t.Errorf("%s: measurement %+v", name, m)
		}
		sizes = append(sizes, m.SkylineSize)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Fatalf("algorithms disagree on skyline size: %v (%v)", sizes, AllAlgorithms())
		}
	}
	if _, err := RunAlgorithm("MR-Nope", s, data); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.Add("1", "2")
	if got := tab.Cell(0, "b"); got != "2" {
		t.Errorf("Cell = %q", got)
	}
	if got := tab.Cell(0, "zzz"); got != "" {
		t.Errorf("missing column Cell = %q", got)
	}
	if got := tab.Cell(5, "a"); got != "" {
		t.Errorf("out-of-range Cell = %q", got)
	}
	if !strings.Contains(tab.String(), "T\n") || !strings.HasPrefix(tab.CSV(), "a,b\n") {
		t.Error("rendering wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged Add accepted")
		}
	}()
	tab.Add("only-one")
}

func TestReducerFigureIncludesSingleReducerPoint(t *testing.T) {
	// Figure 10's r=1 row is the baseline of the comparison; the DNF
	// heuristic must not blank it even on anti-correlated data.
	res, err := RunFigure("fig10", tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	for _, col := range []string{"independent", "anticorrelated"} {
		if v := tab.Cell(0, col); v == "DNF" || v == "" {
			t.Errorf("r=1 %s cell = %q", col, v)
		}
	}
}
