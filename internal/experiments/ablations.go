package experiments

import (
	"fmt"
	"strconv"

	"mrskyline/internal/datagen"
	"mrskyline/internal/grid"
	"mrskyline/internal/skyline"
)

// The ablation experiments isolate the design decisions DESIGN.md calls
// out. Each reuses the figure infrastructure: fresh engine per point,
// deterministic datasets, runtime in seconds.

// mergeAblation contrasts the two group-merging options of Section 5.4.1
// (the paper reports computation-cost merging won its preliminary tests).
func mergeAblation(s Setup) (*FigureResult, error) {
	const paperCard, dim = 1_000_000, 6
	tab := &Table{
		Title:   fmt.Sprintf("Ablation: MR-GPMRS group merging strategy, %d-d, card=%d", dim, s.card(paperCard)),
		Columns: []string{"distribution", "computation[s]", "communication[s]"},
	}
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
		data, _ := s.dataset(dist, paperCard, dim)
		row := []string{dist.String()}
		for _, strat := range []grid.MergeStrategy{grid.MergeByComputation, grid.MergeByCommunication} {
			opts := defaultMeasureOpts()
			opts.merge = strat
			m, err := runAlgorithm(AlgoGPMRS, s, data, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDuration(m.Runtime))
		}
		tab.Add(row...)
	}
	return &FigureResult{Name: "Ablation: merge strategy", Tables: []*Table{tab}}, nil
}

// pruningAblation switches the Equation 2 bitstring pruning off to measure
// what the "early and much more aggressive pruning of unpromising data
// partitions" buys.
func pruningAblation(s Setup) (*FigureResult, error) {
	const paperCard = 1_000_000
	tab := &Table{
		Title:   fmt.Sprintf("Ablation: bitstring pruning (Equation 2), MR-GPSRS, card=%d", s.card(paperCard)),
		Columns: []string{"distribution", "dim", "pruned[s]", "unpruned[s]", "prunedShuffleB", "unprunedShuffleB"},
	}
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
		for _, dim := range []int{2, 4, 6} {
			data, _ := s.dataset(dist, paperCard, dim)
			on := defaultMeasureOpts()
			off := defaultMeasureOpts()
			off.disablePruning = true
			mOn, err := runAlgorithm(AlgoGPSRS, s, data, on)
			if err != nil {
				return nil, err
			}
			mOff, err := runAlgorithm(AlgoGPSRS, s, data, off)
			if err != nil {
				return nil, err
			}
			tab.Add(dist.String(), strconv.Itoa(dim),
				fmtDuration(mOn.Runtime), fmtDuration(mOff.Runtime),
				strconv.FormatInt(mOn.ShuffleBytes, 10), strconv.FormatInt(mOff.ShuffleBytes, 10))
		}
	}
	return &FigureResult{Name: "Ablation: bitstring pruning", Tables: []*Table{tab}}, nil
}

// ppdAblation sweeps fixed PPD values against the Section 3.3 heuristic,
// the trade-off Section 3.3 motivates (too-small TPP wastes partition
// checks, too-large TPP prunes nothing).
func ppdAblation(s Setup) (*FigureResult, error) {
	const paperCard, dim = 1_000_000, 4
	tab := &Table{
		Title:   fmt.Sprintf("Ablation: PPD choice, MR-GPMRS, %d-d, card=%d", dim, s.card(paperCard)),
		Columns: []string{"distribution", "ppd", "runtime[s]", "skyline"},
	}
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
		data, _ := s.dataset(dist, paperCard, dim)
		for _, ppd := range []int{2, 3, 4, 6, 8, 0} {
			opts := defaultMeasureOpts()
			opts.ppdOverride = ppd
			m, err := runAlgorithm(AlgoGPMRS, s, data, opts)
			if err != nil {
				return nil, err
			}
			label := strconv.Itoa(ppd)
			if ppd == 0 {
				label = fmt.Sprintf("auto(%d)", m.PPD)
			}
			tab.Add(dist.String(), label, fmtDuration(m.Runtime), strconv.Itoa(m.SkylineSize))
		}
	}
	return &FigureResult{Name: "Ablation: PPD", Tables: []*Table{tab}}, nil
}

// kernelAblation swaps the in-task local skyline kernel (BNL, the paper's
// Algorithm 4, vs SFS) — the "optimize the local skyline computation"
// future-work item.
func kernelAblation(s Setup) (*FigureResult, error) {
	const paperCard, dim = 1_000_000, 5
	tab := &Table{
		Title:   fmt.Sprintf("Ablation: local skyline kernel, %d-d, card=%d", dim, s.card(paperCard)),
		Columns: []string{"algorithm", "distribution", "bnl[s]", "sfs[s]", "dc[s]"},
	}
	for _, algo := range []string{AlgoGPSRS, AlgoGPMRS} {
		for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
			data, _ := s.dataset(dist, paperCard, dim)
			row := []string{algo, dist.String()}
			for _, k := range []skyline.Kernel{skyline.KernelBNL, skyline.KernelSFS, skyline.KernelDC} {
				opts := defaultMeasureOpts()
				opts.kernel = k
				m, err := runAlgorithm(algo, s, data, opts)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDuration(m.Runtime))
			}
			tab.Add(row...)
		}
	}
	return &FigureResult{Name: "Ablation: kernel", Tables: []*Table{tab}}, nil
}

// hybridAblation compares the future-work Hybrid against always-GPSRS and
// always-GPMRS across the regimes where the paper says each one wins.
func hybridAblation(s Setup) (*FigureResult, error) {
	tab := &Table{
		Title:   "Ablation: Hybrid vs fixed algorithm choice",
		Columns: []string{"distribution", "dim", "card", "GPSRS[s]", "GPMRS[s]", "Hybrid[s]", "hybridChose"},
	}
	points := []struct {
		dist      datagen.Distribution
		dim       int
		paperCard int
	}{
		{datagen.Independent, 3, 1_000_000},    // small skyline: GPSRS regime
		{datagen.Independent, 8, 1_000_000},    // moderate skyline
		{datagen.AntiCorrelated, 3, 1_000_000}, // moderate skyline
		{datagen.AntiCorrelated, 8, 1_000_000}, // huge skyline: GPMRS regime
	}
	for _, pt := range points {
		data, card := s.dataset(pt.dist, pt.paperCard, pt.dim)
		row := []string{pt.dist.String(), strconv.Itoa(pt.dim), strconv.Itoa(card)}
		var chose string
		for _, algo := range []string{AlgoGPSRS, AlgoGPMRS, AlgoHybrid} {
			m, err := runAlgorithm(algo, s, data, defaultMeasureOpts())
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDuration(m.Runtime))
			if algo == AlgoHybrid {
				chose = m.Algo
			}
		}
		tab.Add(append(row, chose)...)
	}
	return &FigureResult{Name: "Ablation: hybrid", Tables: []*Table{tab}}, nil
}

// skymrExtension compares the grid-partitioning algorithms against SKY-MR
// [Park et al., PVLDB 2013], the sampling/quadtree competitor the paper
// discusses in related work but does not measure. Not a paper figure — an
// extension experiment.
func skymrExtension(s Setup) (*FigureResult, error) {
	const paperCard = 1_000_000
	tab := &Table{
		Title:   fmt.Sprintf("Extension: grid bitstring vs SKY-MR sampling, card=%d", s.card(paperCard)),
		Columns: []string{"distribution", "dim", "MR-GPSRS[s]", "MR-GPMRS[s]", "SKY-MR[s]", "skyline"},
	}
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
		for _, dim := range []int{3, 6, 8} {
			data, _ := s.dataset(dist, paperCard, dim)
			row := []string{dist.String(), strconv.Itoa(dim)}
			sky := 0
			for _, algo := range []string{AlgoGPSRS, AlgoGPMRS, AlgoSKYMR} {
				m, err := runAlgorithm(algo, s, data, defaultMeasureOpts())
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDuration(m.Runtime))
				sky = m.SkylineSize
			}
			tab.Add(append(row, strconv.Itoa(sky))...)
		}
	}
	return &FigureResult{Name: "Extension: SKY-MR comparison", Tables: []*Table{tab}}, nil
}

// scaleoutExtension measures MR-GPMRS's simulated runtime as the cluster
// grows at a fixed workload — the scale-out property MapReduce exists for.
// Not a paper figure; an extension experiment over the simulated cluster.
func scaleoutExtension(s Setup) (*FigureResult, error) {
	const paperCard, dim = 1_000_000, 8
	tab := &Table{
		Title:   fmt.Sprintf("Extension: MR-GPMRS runtime vs cluster size, %d-d anticorrelated, card=%d", dim, s.card(paperCard)),
		Columns: []string{"nodes", "runtime[s]", "speedup"},
	}
	data, _ := s.dataset(datagen.AntiCorrelated, paperCard, dim)
	var base float64
	for _, nodes := range []int{1, 2, 4, 8, 13} {
		cfg := s
		cfg.Nodes = nodes
		cfg.Reducers = nodes
		m, err := runAlgorithm(AlgoGPMRS, cfg, data, defaultMeasureOpts())
		if err != nil {
			return nil, err
		}
		secs := m.Runtime.Seconds()
		if nodes == 1 {
			base = secs
		}
		tab.Add(strconv.Itoa(nodes), fmtDuration(m.Runtime), fmt.Sprintf("%.2fx", base/secs))
	}
	return &FigureResult{Name: "Extension: scale-out", Tables: []*Table{tab}}, nil
}
