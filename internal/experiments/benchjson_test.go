package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mrskyline/internal/obs"
)

func TestRunFigureBenchAndWriteJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full figure")
	}
	s := Setup{Seed: 1, Scale: 0.001, Nodes: 4, SlotsPerNode: 2}
	rec, res, err := RunFigureBench("fig7", s)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("figure result has no tables")
	}
	if rec.Figure != "fig7" || rec.Name == "" {
		t.Errorf("record identity = %q/%q", rec.Figure, rec.Name)
	}
	if rec.WallNs <= 0 || rec.Allocs == 0 {
		t.Errorf("cost fields not measured: wall %d ns, %d allocs", rec.WallNs, rec.Allocs)
	}
	if len(rec.Tables) != len(res.Tables) {
		t.Errorf("record has %d tables, figure %d", len(rec.Tables), len(res.Tables))
	}

	probes, err := ProbeAlgorithms(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != len(AllAlgorithms()) {
		t.Fatalf("%d probes for %d algorithms", len(probes), len(AllAlgorithms()))
	}
	for _, p := range probes {
		if p.ShuffleBytes <= 0 {
			t.Errorf("%s: shuffle bytes = %d", p.Algorithm, p.ShuffleBytes)
		}
		if p.SimulatedSec <= 0 {
			t.Errorf("%s: simulated time = %v", p.Algorithm, p.SimulatedSec)
		}
		if p.SkylineSize <= 0 {
			t.Errorf("%s: skyline size = %d", p.Algorithm, p.SkylineSize)
		}
	}
	rec.Probes = probes

	path := filepath.Join(t.TempDir(), "BENCH_fig7.json")
	if err := WriteBenchJSON(path, rec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("written JSON does not decode: %v", err)
	}
	if back.Figure != rec.Figure || len(back.Tables) != len(rec.Tables) || len(back.Probes) != len(rec.Probes) {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

// TestBenchJSONDeterministic is the regression gate for bench-record
// determinism: two identical fault-injected runs — same seeds, fresh
// tracer each — must serialize byte-identically once the host-dependent
// cost fields (wall time, allocations) are zeroed. Everything else in the
// record — tables and the metrics section included — is computed on the
// virtual clock and must not drift.
func TestBenchJSONDeterministic(t *testing.T) {
	run := func() []byte {
		t.Helper()
		s := Setup{Seed: 1, Scale: 0.0001, Nodes: 4, SlotsPerNode: 2,
			FaultRate: 0.1, FaultSeed: 5, Trace: obs.New()}
		rec, _, err := RunFigureBench("fig10", s)
		if err != nil {
			t.Fatal(err)
		}
		rec.WallNs = 0
		rec.Allocs = 0
		rec.AllocBytes = 0
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs produced different bench JSON:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
