package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"mrskyline/internal/maintain"
	"mrskyline/internal/tuple"
	"mrskyline/internal/wal"
)

// RecoveryBenchConfig shapes the crash-recovery bench.
type RecoveryBenchConfig struct {
	// Batches is the longest delta-log length measured (default 1200);
	// BatchSize the mean deltas per batch (default 6); Dim the tuple
	// dimensionality (default 3).
	Batches   int
	BatchSize int
	Dim       int
	// Seed makes the delta stream deterministic; defaults to 1.
	Seed int64
	// Sync is the fsync policy under test (default wal.SyncBatch — the
	// recovery path is identical across policies; always-mode mostly
	// measures the host's fsync latency instead).
	Sync wal.SyncMode
	// Dir hosts the durable directories (default: a fresh temp dir,
	// removed after).
	Dir string
}

func (c RecoveryBenchConfig) withDefaults() RecoveryBenchConfig {
	if c.Batches == 0 {
		c.Batches = 1200
	}
	if c.BatchSize == 0 {
		c.BatchSize = 6
	}
	if c.Dim == 0 {
		c.Dim = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sync == wal.SyncAlways {
		// Zero value; per-batch fsync would make the bench measure disk
		// latency, not recovery.
		c.Sync = wal.SyncBatch
	}
	return c
}

// RecoveryPoint is one crash-and-recover measurement.
type RecoveryPoint struct {
	// CheckpointEvery is the automatic checkpoint interval in batches
	// (negative: none — replay covers the whole log).
	CheckpointEvery int `json:"checkpoint_every"`
	// Batches is how many acknowledged delta batches preceded the crash.
	Batches int `json:"batches"`
	// SnapshotRows and ReplayedRecords describe the recovery work split:
	// rows reseeded from the newest checkpoint vs records replayed from
	// the log.
	SnapshotRows    int   `json:"snapshot_rows"`
	ReplayedRecords int64 `json:"replayed_records"`
	// RecoverySec is the wall-clock to a serving-ready handle.
	RecoverySec float64 `json:"recovery_seconds"`
	// ApplySec is the pre-crash wall-clock spent applying (and logging)
	// the batches — the durability overhead side of the trade.
	ApplySec float64 `json:"apply_seconds"`
	// Identical asserts the recovered skyline is byte-identical to a fresh
	// rebuild of the acknowledged history.
	Identical   bool   `json:"identical"`
	FinalGen    uint64 `json:"final_gen"`
	SkylineSize int    `json:"skyline_size"`
}

// RecoveryBenchRecord is the BENCH_recovery.json payload: recovery time
// as a function of log length (no checkpoints), and the checkpoint
// interval sweep at the full log length showing how checkpoints bound
// replay.
type RecoveryBenchRecord struct {
	Dim       int    `json:"dim"`
	BatchSize int    `json:"batch_size"`
	Seed      int64  `json:"seed"`
	Sync      string `json:"sync"`

	LogLength       []RecoveryPoint `json:"log_length"`
	CheckpointSweep []RecoveryPoint `json:"checkpoint_sweep"`
}

// recoveryDeltas builds the deterministic churn stream: inserts with a
// fraction of deletes against surviving rows.
func recoveryDeltas(seed int64, batches, batchSize, dim int) [][]maintain.Delta {
	rng := rand.New(rand.NewSource(seed))
	var pool tuple.List
	out := make([][]maintain.Delta, batches)
	for i := range out {
		n := 1 + rng.Intn(2*batchSize-1)
		b := make([]maintain.Delta, n)
		for j := range b {
			if len(pool) > 8 && rng.Float64() < 0.25 {
				k := rng.Intn(len(pool))
				b[j] = maintain.Delta{Op: maintain.OpDelete, Row: pool[k].Clone()}
				pool = append(pool[:k], pool[k+1:]...)
				continue
			}
			row := make(tuple.Tuple, dim)
			for d := range row {
				row[d] = rng.Float64()
			}
			pool = append(pool, row)
			b[j] = maintain.Delta{Op: maintain.OpInsert, Row: row.Clone()}
		}
		out[i] = b
	}
	return out
}

func recoverySeed(dim int) tuple.List {
	rng := rand.New(rand.NewSource(99))
	rows := make(tuple.List, 32)
	for i := range rows {
		rows[i] = make(tuple.Tuple, dim)
		for d := range rows[i] {
			rows[i][d] = rng.Float64()
		}
	}
	return rows
}

// measureRecovery runs one crash scenario: apply `batches` batches under
// the given checkpoint interval, abandon the handle the way a crash
// would (no final checkpoint, no final sync), recover, and compare the
// recovered skyline byte-for-byte against a fresh rebuild.
func measureRecovery(dir string, cfg RecoveryBenchConfig, stream [][]maintain.Delta, batches, ckptEvery int) (RecoveryPoint, error) {
	pt := RecoveryPoint{CheckpointEvery: ckptEvery, Batches: batches}
	mcfg := maintain.Config{Dim: cfg.Dim, PPD: 4}
	d, err := wal.Create(dir, recoverySeed(cfg.Dim).Clone(), mcfg, nil, wal.Options{
		Sync:            cfg.Sync,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		return pt, err
	}
	start := time.Now()
	for _, b := range stream[:batches] {
		if _, err := d.Apply(cloneDeltas(b)); err != nil {
			return pt, err
		}
	}
	pt.ApplySec = time.Since(start).Seconds()
	if err := d.Abandon(); err != nil {
		return pt, err
	}

	start = time.Now()
	r, err := wal.Recover(dir, wal.Options{})
	if err != nil {
		return pt, err
	}
	pt.RecoverySec = time.Since(start).Seconds()
	defer r.Close()
	rs := r.Recovery()
	pt.SnapshotRows = rs.SnapshotRows
	pt.ReplayedRecords = rs.ReplayedRecords

	ref, err := maintain.New(recoverySeed(cfg.Dim).Clone(), mcfg)
	if err != nil {
		return pt, err
	}
	for _, b := range stream[:batches] {
		if _, err := ref.Apply(cloneDeltas(b)); err != nil {
			return pt, err
		}
	}
	got, want := r.Maintained().Snapshot(), ref.Snapshot()
	pt.Identical = got.Gen == want.Gen && reflect.DeepEqual(got.Skyline, want.Skyline)
	pt.FinalGen = got.Gen
	pt.SkylineSize = len(got.Skyline)
	if !pt.Identical {
		return pt, fmt.Errorf("experiments: recovered skyline differs from rebuild (gen %d vs %d, %d vs %d rows)",
			got.Gen, want.Gen, len(got.Skyline), len(want.Skyline))
	}
	return pt, nil
}

func cloneDeltas(b []maintain.Delta) []maintain.Delta {
	out := make([]maintain.Delta, len(b))
	for i, d := range b {
		out[i] = maintain.Delta{Op: d.Op, Row: d.Row.Clone()}
	}
	return out
}

// RunRecoveryBench measures crash recovery of durable maintained
// skylines: wall-clock to a serving-ready handle as the log grows
// (checkpoints disabled), and again across checkpoint intervals at the
// full log length. Every point asserts byte-identical recovery before it
// is reported.
func RunRecoveryBench(cfg RecoveryBenchConfig) (*RecoveryBenchRecord, error) {
	cfg = cfg.withDefaults()
	root := cfg.Dir
	if root == "" {
		d, err := os.MkdirTemp("", "skybench-recovery-")
		if err != nil {
			return nil, fmt.Errorf("experiments: recovery bench temp dir: %w", err)
		}
		defer os.RemoveAll(d)
		root = d
	}
	stream := recoveryDeltas(cfg.Seed, cfg.Batches, cfg.BatchSize, cfg.Dim)
	rec := &RecoveryBenchRecord{Dim: cfg.Dim, BatchSize: cfg.BatchSize, Seed: cfg.Seed, Sync: cfg.Sync.String()}

	for n := cfg.Batches / 8; n <= cfg.Batches; n *= 2 {
		dir := fmt.Sprintf("%s/loglen-%d", root, n)
		pt, err := measureRecovery(dir, cfg, stream, n, -1)
		if err != nil {
			return rec, fmt.Errorf("experiments: log length %d: %w", n, err)
		}
		rec.LogLength = append(rec.LogLength, pt)
	}
	for _, every := range []int{32, 128, 512, -1} {
		dir := fmt.Sprintf("%s/ckpt-%d", root, every)
		pt, err := measureRecovery(dir, cfg, stream, cfg.Batches, every)
		if err != nil {
			return rec, fmt.Errorf("experiments: checkpoint interval %d: %w", every, err)
		}
		rec.CheckpointSweep = append(rec.CheckpointSweep, pt)
	}
	return rec, nil
}

// WriteRecoveryBenchJSON writes rec as indented JSON to path.
func WriteRecoveryBenchJSON(path string, rec *RecoveryBenchRecord) error {
	return writeJSONFile(path, rec)
}
