package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	mrskyline "mrskyline"
)

// ServeLoadConfig shapes a serving-load measurement: a fixed synthetic
// dataset queried by a pool of concurrent clients against one
// mrskyline.Service. The zero value is a small smoke-sized run.
type ServeLoadConfig struct {
	// Queries is the total query count (default 64).
	Queries int
	// Workers is the number of concurrent clients (default 8).
	Workers int
	// Distribution, Card, Dim and Seed shape the dataset (defaults:
	// independent, 1000 × 4d, seed 1).
	Distribution string
	Card         int
	Dim          int
	Seed         int64
	// Service configures the serving layer under test.
	Service mrskyline.ServiceConfig
}

func (c ServeLoadConfig) withDefaults() ServeLoadConfig {
	if c.Queries == 0 {
		c.Queries = 64
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Distribution == "" {
		c.Distribution = "independent"
	}
	if c.Card == 0 {
		c.Card = 1000
	}
	if c.Dim == 0 {
		c.Dim = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServeLoadResult is one serving-load run, serialized into
// BENCH_serve.json for performance trajectory tracking. Latencies are
// host wall-clock per query (queue wait included), percentiles computed
// by exact sort over all successful queries.
type ServeLoadResult struct {
	Queries int `json:"queries"`
	Workers int `json:"workers"`

	Distribution string `json:"distribution"`
	Card         int    `json:"card"`
	Dim          int    `json:"dim"`
	Seed         int64  `json:"seed"`

	MaxInFlight int `json:"max_in_flight"`
	Nodes       int `json:"nodes"`

	Errors        int     `json:"errors"`
	WallSec       float64 `json:"wall_seconds"`
	ThroughputQPS float64 `json:"throughput_qps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`

	// Admission outcomes after the run (the mr.queue.* counters).
	// Admitted counts MapReduce jobs, not queries: one grid-algorithm
	// query runs a bitstring job plus a skyline job. MaxInFlight and
	// Nodes echo the configuration (0 = the service default).
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
}

// ServeLoad fires cfg.Queries mixed queries (plain, constrained and
// subspace skylines round-robin) from cfg.Workers concurrent clients at
// one Service and reports throughput and latency percentiles. A query
// failing for any reason counts in Errors; with a default config every
// query must succeed.
func ServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) {
	cfg = cfg.withDefaults()
	data, err := mrskyline.Generate(cfg.Distribution, cfg.Card, cfg.Dim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	svc, err := mrskyline.NewService(cfg.Service)
	if err != nil {
		return nil, err
	}

	constraints := make([]mrskyline.Range, cfg.Dim)
	for k := range constraints {
		constraints[k] = mrskyline.Unbounded()
	}
	constraints[0] = mrskyline.Range{Min: 0.1, Max: 1}
	dims := []int{0, cfg.Dim - 1}

	type outcome struct {
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, cfg.Queries)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := range jobs {
				qStart := time.Now()
				var err error
				switch i % 3 {
				case 0:
					_, err = svc.Compute(ctx, data, mrskyline.Options{})
				case 1:
					_, err = svc.ComputeConstrained(ctx, data, constraints, mrskyline.Options{})
				default:
					_, err = svc.ComputeSubspace(ctx, data, dims, mrskyline.Options{})
				}
				outcomes[i] = outcome{time.Since(qStart), err}
			}
		}()
	}
	for i := 0; i < cfg.Queries; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	var latencies []time.Duration
	var firstErr error
	errors := 0
	for _, o := range outcomes {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			errors++
			continue
		}
		latencies = append(latencies, o.latency)
	}
	if len(latencies) == 0 {
		return nil, fmt.Errorf("experiments: all %d queries failed, first error: %v", cfg.Queries, firstErr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) float64 {
		idx := (len(latencies) - 1) * p / 100
		return float64(latencies[idx]) / float64(time.Millisecond)
	}

	st := svc.Stats()
	res := &ServeLoadResult{
		Queries:      cfg.Queries,
		Workers:      cfg.Workers,
		Distribution: cfg.Distribution,
		Card:         cfg.Card,
		Dim:          cfg.Dim,
		Seed:         cfg.Seed,
		MaxInFlight:  cfg.Service.MaxInFlight,
		Nodes:        cfg.Service.Nodes,

		Errors:        errors,
		WallSec:       wall.Seconds(),
		ThroughputQPS: float64(len(latencies)) / wall.Seconds(),
		LatencyP50Ms:  pct(50),
		LatencyP90Ms:  pct(90),
		LatencyP99Ms:  pct(99),

		Admitted: st.Admitted,
		Rejected: st.Rejected,
		Canceled: st.Canceled,
	}
	return res, nil
}

// WriteServeBenchJSON serializes one serving-load run to path
// (conventionally BENCH_serve.json).
func WriteServeBenchJSON(path string, res *ServeLoadResult) error {
	return writeJSONFile(path, res)
}
