package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	mrskyline "mrskyline"
)

// ServeLoadConfig shapes a serving-load measurement: a fixed synthetic
// dataset queried by a pool of concurrent clients against one
// mrskyline.Service. The zero value is a small smoke-sized run.
type ServeLoadConfig struct {
	// Queries is the total query count (default 64).
	Queries int
	// Workers is the number of concurrent clients (default 8).
	Workers int
	// Distribution, Card, Dim and Seed shape the dataset (defaults:
	// independent, 1000 × 4d, seed 1).
	Distribution string
	Card         int
	Dim          int
	Seed         int64
	// Service configures the serving layer under test.
	Service mrskyline.ServiceConfig
	// ChurnFraction, when positive, appends an update-heavy phase after
	// the query mix: a maintained skyline is opened on the service and
	// DeltaBatches delta batches are applied, each churning
	// ChurnFraction of the dataset (half deletes of resident rows, half
	// inserts of fresh ones, so cardinality stays stable). Each batch
	// measures the delta apply, the maintained skyline read, and the
	// recompute-per-query baseline over the same residents. Must lie in
	// (0, 1] when set.
	ChurnFraction float64
	// DeltaBatches is the churn phase's batch count (default 16; only
	// with ChurnFraction > 0).
	DeltaBatches int
}

func (c ServeLoadConfig) withDefaults() ServeLoadConfig {
	if c.ChurnFraction > 0 && c.DeltaBatches == 0 {
		c.DeltaBatches = 16
	}
	if c.Queries == 0 {
		c.Queries = 64
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Distribution == "" {
		c.Distribution = "independent"
	}
	if c.Card == 0 {
		c.Card = 1000
	}
	if c.Dim == 0 {
		c.Dim = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServeLoadResult is one serving-load run, serialized into
// BENCH_serve.json for performance trajectory tracking. Latencies are
// host wall-clock per query (queue wait included), percentiles computed
// by exact sort over all successful queries.
type ServeLoadResult struct {
	Queries int `json:"queries"`
	Workers int `json:"workers"`

	Distribution string `json:"distribution"`
	Card         int    `json:"card"`
	Dim          int    `json:"dim"`
	Seed         int64  `json:"seed"`

	MaxInFlight int `json:"max_in_flight"`
	Nodes       int `json:"nodes"`

	Errors        int     `json:"errors"`
	WallSec       float64 `json:"wall_seconds"`
	ThroughputQPS float64 `json:"throughput_qps"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`

	// Admission outcomes after the run (the mr.queue.* counters).
	// Admitted counts MapReduce jobs, not queries: one grid-algorithm
	// query runs a bitstring job plus a skyline job. MaxInFlight and
	// Nodes echo the configuration (0 = the service default).
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`

	// Churn phase (ChurnFraction > 0 only). MaintainedP50Ms is the
	// latency of reading the maintained skyline after a delta batch;
	// RecomputeP50Ms is the recompute-per-query baseline over the same
	// resident rows; MaintainedSpeedupP50 is their ratio.
	ChurnFraction        float64 `json:"churn_fraction,omitempty"`
	DeltaBatches         int     `json:"delta_batches,omitempty"`
	DeltaOps             int     `json:"delta_ops,omitempty"`
	DeltaApplyP50Ms      float64 `json:"delta_apply_p50_ms,omitempty"`
	MaintainedP50Ms      float64 `json:"maintained_p50_ms,omitempty"`
	MaintainedP99Ms      float64 `json:"maintained_p99_ms,omitempty"`
	RecomputeP50Ms       float64 `json:"recompute_p50_ms,omitempty"`
	MaintainedSpeedupP50 float64 `json:"maintained_speedup_p50,omitempty"`
	FinalGen             uint64  `json:"final_gen,omitempty"`
	FinalSkylineSize     int     `json:"final_skyline_size,omitempty"`
}

// ServeLoad fires cfg.Queries mixed queries (plain, constrained and
// subspace skylines round-robin) from cfg.Workers concurrent clients at
// one Service and reports throughput and latency percentiles. A query
// failing for any reason counts in Errors; with a default config every
// query must succeed.
func ServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.ChurnFraction < 0 || cfg.ChurnFraction > 1 {
		return nil, fmt.Errorf("experiments: churn fraction %v outside [0, 1]", cfg.ChurnFraction)
	}
	data, err := mrskyline.Generate(cfg.Distribution, cfg.Card, cfg.Dim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	svc, err := mrskyline.NewService(cfg.Service)
	if err != nil {
		return nil, err
	}

	constraints := make([]mrskyline.Range, cfg.Dim)
	for k := range constraints {
		constraints[k] = mrskyline.Unbounded()
	}
	constraints[0] = mrskyline.Range{Min: 0.1, Max: 1}
	dims := []int{0, cfg.Dim - 1}

	type outcome struct {
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, cfg.Queries)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := range jobs {
				qStart := time.Now()
				var err error
				switch i % 3 {
				case 0:
					_, err = svc.Compute(ctx, data, mrskyline.Options{})
				case 1:
					_, err = svc.ComputeConstrained(ctx, data, constraints, mrskyline.Options{})
				default:
					_, err = svc.ComputeSubspace(ctx, data, dims, mrskyline.Options{})
				}
				outcomes[i] = outcome{time.Since(qStart), err}
			}
		}()
	}
	for i := 0; i < cfg.Queries; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	var latencies []time.Duration
	var firstErr error
	errors := 0
	for _, o := range outcomes {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			errors++
			continue
		}
		latencies = append(latencies, o.latency)
	}
	if len(latencies) == 0 {
		return nil, fmt.Errorf("experiments: all %d queries failed, first error: %v", cfg.Queries, firstErr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) float64 {
		idx := (len(latencies) - 1) * p / 100
		return float64(latencies[idx]) / float64(time.Millisecond)
	}

	st := svc.Stats()
	res := &ServeLoadResult{
		Queries:      cfg.Queries,
		Workers:      cfg.Workers,
		Distribution: cfg.Distribution,
		Card:         cfg.Card,
		Dim:          cfg.Dim,
		Seed:         cfg.Seed,
		MaxInFlight:  cfg.Service.MaxInFlight,
		Nodes:        cfg.Service.Nodes,

		Errors:        errors,
		WallSec:       wall.Seconds(),
		ThroughputQPS: float64(len(latencies)) / wall.Seconds(),
		LatencyP50Ms:  pct(50),
		LatencyP90Ms:  pct(90),
		LatencyP99Ms:  pct(99),

		Admitted: st.Admitted,
		Rejected: st.Rejected,
		Canceled: st.Canceled,
	}
	if cfg.ChurnFraction > 0 {
		if err := churn(svc, data, cfg, res); err != nil {
			return nil, fmt.Errorf("experiments: churn phase: %w", err)
		}
	}
	return res, nil
}

// churn runs the update-heavy phase: DeltaBatches delta batches against a
// maintained skyline opened on svc, measuring — per batch — the apply
// latency, the maintained read latency, and the recompute-per-query
// baseline (a full Service.Compute over the same residents). The resident
// multiset evolves but keeps its cardinality: each batch deletes
// ⌈churn·card⌉/2 random resident rows and inserts as many fresh ones from
// the same distribution.
func churn(svc *mrskyline.Service, data [][]float64, cfg ServeLoadConfig, res *ServeLoadResult) error {
	h, err := svc.OpenMaintained(data, mrskyline.MaintainOptions{})
	if err != nil {
		return err
	}
	batch := int(cfg.ChurnFraction * float64(cfg.Card))
	if batch < 2 {
		batch = 2
	}
	ins := batch / 2
	del := batch - ins
	fresh, err := mrskyline.Generate(cfg.Distribution, cfg.DeltaBatches*ins, cfg.Dim, cfg.Seed+7919)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	live := make([][]float64, len(data))
	copy(live, data)

	ctx := context.Background()
	var applyLat, maintLat, recompLat []time.Duration
	deltaOps := 0
	for b := 0; b < cfg.DeltaBatches; b++ {
		deltas := make([]mrskyline.Delta, 0, batch)
		for i := 0; i < del && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			deltas = append(deltas, mrskyline.Delta{Op: mrskyline.DeltaDelete, Row: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for i := 0; i < ins; i++ {
			row := fresh[b*ins+i]
			deltas = append(deltas, mrskyline.Delta{Op: mrskyline.DeltaInsert, Row: row})
			live = append(live, row)
		}
		deltaOps += len(deltas)
		t0 := time.Now()
		if _, err := h.ApplyDeltas(deltas); err != nil {
			return err
		}
		applyLat = append(applyLat, time.Since(t0))
		// The maintained read is far below timer resolution; time a burst
		// and report the per-read mean as one sample.
		const reads = 16
		t0 = time.Now()
		for r := 0; r < reads; r++ {
			h.Skyline()
		}
		maintLat = append(maintLat, time.Since(t0)/reads)
		t0 = time.Now()
		if _, err := svc.Compute(ctx, live, mrskyline.Options{}); err != nil {
			return err
		}
		recompLat = append(recompLat, time.Since(t0))
	}

	res.ChurnFraction = cfg.ChurnFraction
	res.DeltaBatches = cfg.DeltaBatches
	res.DeltaOps = deltaOps
	res.DeltaApplyP50Ms = pctMs(applyLat, 50)
	res.MaintainedP50Ms = pctMs(maintLat, 50)
	res.MaintainedP99Ms = pctMs(maintLat, 99)
	res.RecomputeP50Ms = pctMs(recompLat, 50)
	if p50 := res.MaintainedP50Ms; p50 > 0 {
		res.MaintainedSpeedupP50 = res.RecomputeP50Ms / p50
	} else {
		// Sub-resolution maintained reads: report the ratio against one
		// timer tick rather than dividing by zero.
		res.MaintainedSpeedupP50 = res.RecomputeP50Ms / (float64(time.Nanosecond) / float64(time.Millisecond))
	}
	snap := h.Skyline()
	res.FinalGen = snap.Gen
	res.FinalSkylineSize = len(snap.Skyline)
	return nil
}

// pctMs returns the p-th percentile of lats in milliseconds (exact sort).
func pctMs(lats []time.Duration, p int) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[(len(s)-1)*p/100]) / float64(time.Millisecond)
}

// WriteServeBenchJSON serializes one serving-load run to path
// (conventionally BENCH_serve.json).
func WriteServeBenchJSON(path string, res *ServeLoadResult) error {
	return writeJSONFile(path, res)
}
