package experiments

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"mrskyline/internal/cluster"
	"mrskyline/internal/core"
	"mrskyline/internal/datagen"
	"mrskyline/internal/mapreduce"
	"mrskyline/internal/spill"
	"mrskyline/internal/tuple"
)

// SpillBenchConfig shapes the beyond-RAM shuffle bench.
type SpillBenchConfig struct {
	// Card and Dim shape the workload; defaults are 3×10⁶ independent
	// tuples at d = 4 — a dataset whose encoded payload is far larger than
	// the default budget, so completing the run proves the shuffle never
	// needs the dataset resident.
	Card int
	Dim  int
	// Seed makes data generation deterministic; defaults to 1.
	Seed int64
	// Budget is the per-writer resident-byte budget (default 32 MiB);
	// Dir is where run files go (default: a fresh temp dir, removed after).
	Budget int64
	Dir    string
	// FanIn caps the merge fan-in (0 = spill package default).
	FanIn int
	// Slots is the engine's parallelism (Slots nodes × 1 slot, wall-clock);
	// defaults to 4. Mappers is fixed at 4×Slots so every reducer merges
	// more runs than the fan-in, forcing a multi-round merge tree.
	Slots int
}

func (c SpillBenchConfig) withDefaults() SpillBenchConfig {
	if c.Card == 0 {
		c.Card = 3_000_000
	}
	if c.Dim == 0 {
		c.Dim = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Budget == 0 {
		c.Budget = 32 << 20
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.FanIn == 0 {
		c.FanIn = spill.DefaultFanIn
	}
	return c
}

// SpillAlgoResult compares one algorithm across the two shuffle paths.
type SpillAlgoResult struct {
	Algorithm string `json:"algorithm"`
	// InMemorySec / SpilledSec are host wall-clock seconds per path.
	InMemorySec float64 `json:"in_memory_seconds"`
	SpilledSec  float64 `json:"spilled_seconds"`
	// SkylineSize and OutputBytes describe the (identical) result.
	SkylineSize int  `json:"skyline_size"`
	OutputBytes int  `json:"output_bytes"`
	Identical   bool `json:"identical"`
	// ShuffleBytes is the reducer-payload volume (same on both paths).
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// Spill telemetry of the spilled run.
	RunsWritten       int64 `json:"runs_written"`
	SpillBytes        int64 `json:"spill_bytes"`
	MergeRounds       int64 `json:"merge_rounds"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`
}

// SpillBenchRecord is the BENCH_spill.json payload: MR-GPSRS and MR-GPMRS
// run all-in-RAM and through the external-memory shuffle on the same
// beyond-RAM workload, asserting byte-identical skylines and reporting the
// spilled path's peak shuffle residency against the budget.
type SpillBenchRecord struct {
	Card         int    `json:"card"`
	Dim          int    `json:"dim"`
	Seed         int64  `json:"seed"`
	Distribution string `json:"distribution"`
	Budget       int64  `json:"budget_bytes"`
	FanIn        int    `json:"merge_fan_in"`
	Mappers      int    `json:"mappers"`
	Reducers     int    `json:"reducers"`
	// DatasetBytes is the encoded size of the input tuples — the volume an
	// all-in-RAM shuffle would hold resident per job.
	DatasetBytes int64 `json:"dataset_bytes"`
	// PeakResidentBytes is the maximum across algorithms of the spill
	// gauge: writer arenas plus merge buffers actually resident at once.
	PeakResidentBytes int64 `json:"peak_resident_bytes"`

	Algorithms []SpillAlgoResult `json:"algorithms"`
}

// RunSpillBench measures MR-GPSRS and MR-GPMRS with the shuffle all in RAM
// and again with a spill budget far below the dataset size, asserting the
// two paths produce byte-identical skylines (the DESIGN.md §13 contract)
// and that the spilled path's peak residency stays bounded by writer
// budgets rather than dataset size. Mappers outnumber the merge fan-in per
// reducer, so every spilled reduce exercises a multi-round merge tree.
func RunSpillBench(cfg SpillBenchConfig) (*SpillBenchRecord, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "skybench-spill-")
		if err != nil {
			return nil, fmt.Errorf("experiments: spill bench temp dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	data := datagen.Generate(datagen.Independent, cfg.Card, cfg.Dim, cfg.Seed)
	mappers := 4 * cfg.Slots
	reducers := cfg.Slots

	cl, err := cluster.Uniform(cfg.Slots, 1)
	if err != nil {
		return nil, err
	}
	eng := mapreduce.NewEngine(cl)

	rec := &SpillBenchRecord{
		Card:         cfg.Card,
		Dim:          cfg.Dim,
		Seed:         cfg.Seed,
		Distribution: "independent",
		Budget:       cfg.Budget,
		FanIn:        cfg.FanIn,
		Mappers:      mappers,
		Reducers:     reducers,
		DatasetBytes: int64(len(tuple.EncodeList(data))),
	}

	algos := []struct {
		name string
		run  func(core.Config, tuple.List) (tuple.List, *core.Stats, error)
	}{
		{AlgoGPSRS, core.GPSRS},
		{AlgoGPMRS, core.GPMRS},
	}
	for _, a := range algos {
		ccfg := core.Config{Engine: eng, NumMappers: mappers, NumReducers: reducers}

		eng.Spill = nil
		start := time.Now()
		skyMem, stMem, err := a.run(ccfg, data)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s all-in-RAM: %w", a.name, err)
		}
		memSec := time.Since(start).Seconds()

		stats := &spill.Stats{}
		eng.Spill = &spill.Config{Dir: dir, Budget: cfg.Budget, FanIn: cfg.FanIn, Stats: stats}
		start = time.Now()
		skySp, _, err := a.run(ccfg, data)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s spilled: %w", a.name, err)
		}
		spSec := time.Since(start).Seconds()
		eng.Spill = nil

		encMem, encSp := tuple.EncodeList(skyMem), tuple.EncodeList(skySp)
		identical := bytes.Equal(encMem, encSp)
		peak := stats.PeakResident()
		if peak > rec.PeakResidentBytes {
			rec.PeakResidentBytes = peak
		}
		rec.Algorithms = append(rec.Algorithms, SpillAlgoResult{
			Algorithm:         a.name,
			InMemorySec:       memSec,
			SpilledSec:        spSec,
			SkylineSize:       len(skyMem),
			OutputBytes:       len(encMem),
			Identical:         identical,
			ShuffleBytes:      stMem.ShuffleBytes,
			RunsWritten:       stats.RunsWritten.Load(),
			SpillBytes:        stats.SpillBytes.Load(),
			MergeRounds:       stats.MergeRounds.Load(),
			PeakResidentBytes: peak,
		})
		if !identical {
			return rec, fmt.Errorf("experiments: %s output differs between shuffle paths (%d vs %d tuples)", a.name, len(skyMem), len(skySp))
		}
	}
	return rec, nil
}

// WriteSpillBenchJSON writes rec as indented JSON to path.
func WriteSpillBenchJSON(path string, rec *SpillBenchRecord) error {
	return writeJSONFile(path, rec)
}
