package experiments

import (
	"strings"
	"testing"
)

func TestShapeChecksCoverKeyFigures(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range ShapeChecks() {
		covered[c.Figure] = true
		if c.Name == "" || c.Claim == "" || c.Eval == nil {
			t.Errorf("incomplete check %+v", c)
		}
	}
	for _, fig := range []string{"fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !covered[fig] {
			t.Errorf("no shape check for %s", fig)
		}
	}
}

func TestReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	if err := Report(tinySetup(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"## Figure 7",
		"## Figure 11",
		"Ablation: hybrid",
		"estimates-upper-bound-measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every check must have evaluated to PASS or FAIL (none skipped).
	if got := strings.Count(out, "- **["); got != len(ShapeChecks()) {
		t.Errorf("%d check lines rendered, want %d", got, len(ShapeChecks()))
	}
}

func TestScaleRobustChecksPassAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The fig11, pruning and hybrid checks do not depend on data scale;
	// they must pass even on 1000-tuple sweeps. (Runtime-shape checks such
	// as fig10's are validated at report scale instead.)
	robust := map[string]bool{
		"estimates-upper-bound-measured": true,
		"pruning-never-hurts-shuffle":    true,
		"hybrid-tracks-the-winner":       true,
	}
	// fig11 needs the paper's cluster shape (reducers ≥ groups per
	// surface); see TestCostValidationEstimateIsUpperBound.
	s := Setup{Seed: 7, Scale: 0.0001}
	for _, check := range ShapeChecks() {
		if !robust[check.Name] {
			continue
		}
		res, err := RunFigure(check.Figure, s)
		if err != nil {
			t.Fatalf("%s: %v", check.Figure, err)
		}
		ok, detail := check.Eval(res)
		if !ok {
			t.Errorf("check %s failed at tiny scale: %s", check.Name, detail)
		}
	}
}

func TestReportContainsFailHook(t *testing.T) {
	if !reportContainsFail("- **[FAIL] x** — y") {
		t.Error("FAIL not detected")
	}
	if reportContainsFail("- **[PASS] x** — y") {
		t.Error("PASS misdetected")
	}
}
