package experiments

import (
	"fmt"
	"time"

	"mrskyline/internal/baseline"
	"mrskyline/internal/core"
	"mrskyline/internal/grid"
	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// tupleList aliases the tuple list type to keep signatures short here.
type tupleList = tuple.List

// Algorithm names accepted by RunAlgorithm and the figure runners.
const (
	AlgoGPSRS  = "MR-GPSRS"
	AlgoGPMRS  = "MR-GPMRS"
	AlgoBNL    = "MR-BNL"
	AlgoSFS    = "MR-SFS"
	AlgoAngle  = "MR-Angle"
	AlgoSKYMR  = "SKY-MR"
	AlgoHybrid = "Hybrid"
)

// PaperAlgorithms returns the four algorithms the paper's figures compare.
func PaperAlgorithms() []string {
	return []string{AlgoGPSRS, AlgoGPMRS, AlgoBNL, AlgoAngle}
}

// AllAlgorithms returns every implemented algorithm, including the MR-SFS
// baseline the paper skips and the future-work Hybrid.
func AllAlgorithms() []string {
	return []string{AlgoGPSRS, AlgoGPMRS, AlgoBNL, AlgoSFS, AlgoAngle, AlgoSKYMR, AlgoHybrid}
}

// Measurement is one algorithm execution on one dataset.
type Measurement struct {
	Algo string
	// Runtime is the simulated cluster makespan when the setup runs with
	// simulation (the default), or host wall-clock with Setup.NoSim.
	Runtime time.Duration
	// WallTime is always the host wall-clock duration.
	WallTime    time.Duration
	SkylineSize int
	// PPD is the grid granularity used (grid algorithms only).
	PPD int
	// MapperPartCmp / ReducerPartCmp are the busiest task's partition-wise
	// comparison counts (grid algorithms only; Figure 11).
	MapperPartCmp  int64
	ReducerPartCmp int64
	DominanceTests int64
	ShuffleBytes   int64
	// Fault-injection telemetry; all zero unless the setup ran with a
	// FaultRate.
	TaskFailures        int64
	SpeculativeLaunched int64
	SpeculativeWon      int64
	NodeFailures        int64
	ShuffleCorruptions  int64
}

// measureOpts tweaks a single run beyond the Setup defaults.
type measureOpts struct {
	reducers       int
	kernel         skyline.Kernel
	merge          grid.MergeStrategy
	disablePruning bool
	ppdOverride    int // -1: keep setup; ≥0: use this value
}

func defaultMeasureOpts() measureOpts { return measureOpts{ppdOverride: -1} }

// runAlgorithm executes one named algorithm on data and returns its
// measurement. Every call builds a fresh engine so runs are independent.
func runAlgorithm(name string, s Setup, data tupleList, opts measureOpts) (Measurement, error) {
	eng, err := s.newEngine()
	if err != nil {
		return Measurement{}, err
	}
	reducers := opts.reducers
	if reducers == 0 {
		reducers = s.Reducers
	}
	ppd := s.PPD
	if opts.ppdOverride >= 0 {
		ppd = opts.ppdOverride
	}

	switch name {
	case AlgoGPSRS, AlgoGPMRS, AlgoHybrid:
		cfg := core.Config{
			Engine:         eng,
			NumMappers:     s.Mappers,
			NumReducers:    reducers,
			PPD:            ppd,
			Kernel:         opts.kernel,
			Merge:          opts.merge,
			DisablePruning: opts.disablePruning,
		}
		var (
			st  *core.Stats
			err error
		)
		switch name {
		case AlgoGPSRS:
			_, st, err = core.GPSRS(cfg, data)
		case AlgoGPMRS:
			_, st, err = core.GPMRS(cfg, data)
		default:
			_, st, err = core.Hybrid(cfg, data)
		}
		if err != nil {
			return Measurement{}, fmt.Errorf("experiments: %s: %w", name, err)
		}
		runtime := st.Total
		if st.SimulatedTotal > 0 {
			runtime = st.SimulatedTotal
		}
		return Measurement{
			Algo:                st.Algorithm,
			Runtime:             runtime,
			WallTime:            st.Total,
			SkylineSize:         st.SkylineSize,
			PPD:                 st.PPD,
			MapperPartCmp:       st.MapperPartCmpMax,
			ReducerPartCmp:      st.ReducerPartCmpMax,
			DominanceTests:      st.DominanceTests,
			ShuffleBytes:        st.ShuffleBytes,
			TaskFailures:        st.TaskFailures,
			SpeculativeLaunched: st.SpeculativeLaunched,
			SpeculativeWon:      st.SpeculativeWon,
			NodeFailures:        st.NodeFailures,
			ShuffleCorruptions:  st.ShuffleCorruptions,
		}, nil

	case AlgoBNL, AlgoSFS, AlgoAngle, AlgoSKYMR:
		cfg := baseline.Config{Engine: eng, NumMappers: s.Mappers}
		var (
			st  *baseline.Stats
			err error
		)
		switch name {
		case AlgoBNL:
			_, st, err = baseline.MRBNL(cfg, data)
		case AlgoSFS:
			_, st, err = baseline.MRSFS(cfg, data)
		case AlgoSKYMR:
			_, st, err = baseline.SKYMR(cfg, data)
		default:
			_, st, err = baseline.MRAngle(cfg, data)
		}
		if err != nil {
			return Measurement{}, fmt.Errorf("experiments: %s: %w", name, err)
		}
		runtime := st.Total
		if st.SimulatedTotal > 0 {
			runtime = st.SimulatedTotal
		}
		return Measurement{
			Algo:                st.Algorithm,
			Runtime:             runtime,
			WallTime:            st.Total,
			SkylineSize:         st.SkylineSize,
			DominanceTests:      st.DominanceTests,
			ShuffleBytes:        st.ShuffleBytes,
			TaskFailures:        st.TaskFailures,
			SpeculativeLaunched: st.SpeculativeLaunched,
			SpeculativeWon:      st.SpeculativeWon,
			NodeFailures:        st.NodeFailures,
			ShuffleCorruptions:  st.ShuffleCorruptions,
		}, nil

	default:
		return Measurement{}, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// RunAlgorithm executes one named algorithm with default options; it is the
// entry point CLI tools use for one-off measurements.
func RunAlgorithm(name string, s Setup, data tupleList) (Measurement, error) {
	return runAlgorithm(name, s.withDefaults(), data, defaultMeasureOpts())
}
