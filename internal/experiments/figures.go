package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mrskyline/internal/costmodel"
	"mrskyline/internal/datagen"
)

// FigureResult is the output of one figure runner: one or more tables.
type FigureResult struct {
	Name   string
	Tables []*Table
}

// FigureNames lists the experiment identifiers RunFigure accepts, in paper
// order followed by the ablations.
func FigureNames() []string {
	return []string{
		"fig7", "fig8", "fig9", "fig10", "fig11",
		"ablation-merge", "ablation-prune", "ablation-ppd",
		"ablation-kernel", "ablation-hybrid", "extension-skymr",
		"extension-scaleout",
	}
}

// RunFigure regenerates one figure or ablation by name.
func RunFigure(name string, s Setup) (*FigureResult, error) {
	s = s.withDefaults()
	switch name {
	case "fig7":
		return dimensionalityFigure(s, "Figure 7", datagen.Independent)
	case "fig8":
		return dimensionalityFigure(s, "Figure 8", datagen.AntiCorrelated)
	case "fig9":
		return cardinalityFigure(s)
	case "fig10":
		return reducerFigure(s)
	case "fig11":
		return costValidationFigure(s)
	case "ablation-merge":
		return mergeAblation(s)
	case "ablation-prune":
		return pruningAblation(s)
	case "ablation-ppd":
		return ppdAblation(s)
	case "ablation-kernel":
		return kernelAblation(s)
	case "ablation-hybrid":
		return hybridAblation(s)
	case "extension-skymr":
		return skymrExtension(s)
	case "extension-scaleout":
		return scaleoutExtension(s)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (want one of %v)", name, FigureNames())
	}
}

// runtimeCell measures one algorithm on one dataset and renders the
// runtime-in-seconds cell, honouring the paper's DNF exclusions.
func runtimeCell(s Setup, algo string, dist datagen.Distribution, data tupleList, opts measureOpts) (string, error) {
	if s.shouldSkip(algo, dist, len(data), data.Dim()) {
		return "DNF", nil
	}
	m, err := runAlgorithm(algo, s, data, opts)
	if err != nil {
		return "", err
	}
	return fmtDuration(m.Runtime), nil
}

// dimensionalityFigure reproduces Figures 7 (independent) and 8
// (anti-correlated): runtime vs dimensionality 2..10 at the paper's two
// cardinalities, for the four compared algorithms. Panels (a)+(b) share a
// cardinality, as do (c)+(d); each pair becomes one table here.
func dimensionalityFigure(s Setup, title string, dist datagen.Distribution) (*FigureResult, error) {
	res := &FigureResult{Name: title}
	panels := []struct {
		label     string
		paperCard int
	}{
		{"(a,b)", 100_000},
		{"(c,d)", 2_000_000},
	}
	algos := PaperAlgorithms()
	for _, panel := range panels {
		card := s.card(panel.paperCard)
		tab := &Table{
			Title:   fmt.Sprintf("%s%s: runtime [s] vs dimensionality, %v, card=%d", title, panel.label, dist, card),
			Columns: append([]string{"dim"}, algos...),
		}
		for d := 2; d <= 10; d++ {
			data, _ := s.dataset(dist, panel.paperCard, d)
			row := []string{strconv.Itoa(d)}
			for _, algo := range algos {
				cell, err := runtimeCell(s, algo, dist, data, defaultMeasureOpts())
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
			tab.Add(row...)
		}
		res.Tables = append(res.Tables, tab)
	}
	return res, nil
}

// cardinalityFigure reproduces Figure 9: runtime vs cardinality for d ∈
// {3, 8} on both distributions.
func cardinalityFigure(s Setup) (*FigureResult, error) {
	res := &FigureResult{Name: "Figure 9"}
	paperCards := []int{100_000, 500_000, 1_000_000, 2_000_000, 3_000_000}
	algos := PaperAlgorithms()
	panels := []struct {
		label string
		dist  datagen.Distribution
		dim   int
	}{
		{"(a)", datagen.Independent, 3},
		{"(b)", datagen.Independent, 8},
		{"(c)", datagen.AntiCorrelated, 3},
		{"(d)", datagen.AntiCorrelated, 8},
	}
	for _, panel := range panels {
		tab := &Table{
			Title:   fmt.Sprintf("Figure 9%s: runtime [s] vs cardinality, %d-d %v", panel.label, panel.dim, panel.dist),
			Columns: append([]string{"card"}, algos...),
		}
		// Distinct scaled cardinalities only (scaling can collapse points).
		seen := map[int]bool{}
		var cards []int
		for _, pc := range paperCards {
			c := s.card(pc)
			if !seen[c] {
				seen[c] = true
				cards = append(cards, c)
			}
		}
		sort.Ints(cards)
		for _, card := range cards {
			data := datagen.Generate(panel.dist, card, panel.dim,
				s.Seed+int64(panel.dist)*1_000_003+int64(card)*31+int64(panel.dim))
			row := []string{strconv.Itoa(card)}
			for _, algo := range algos {
				cell, err := runtimeCell(s, algo, panel.dist, data, defaultMeasureOpts())
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
			tab.Add(row...)
		}
		res.Tables = append(res.Tables, tab)
	}
	return res, nil
}

// reducerFigure reproduces Figure 10: MR-GPMRS runtime vs the number of
// reducers (1 = MR-GPSRS, as in the paper) on 8-dimensional data of
// cardinality 2×10⁶, both distributions.
func reducerFigure(s Setup) (*FigureResult, error) {
	const paperCard, dim = 2_000_000, 8
	// The paper's Figure 10 includes the single-reducer point even on
	// anti-correlated data (it is the baseline of the comparison), so the
	// DNF heuristic does not apply here.
	s.NoSkip = true
	reducers := []int{1, 5, 9, 13, 17}
	tab := &Table{
		Title:   fmt.Sprintf("Figure 10: runtime [s] vs reducers, %d-d, card=%d", dim, s.card(paperCard)),
		Columns: []string{"reducers", "independent", "anticorrelated"},
	}
	for _, r := range reducers {
		row := []string{strconv.Itoa(r)}
		for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
			data, _ := s.dataset(dist, paperCard, dim)
			algo := AlgoGPMRS
			if r == 1 {
				algo = AlgoGPSRS
			}
			opts := defaultMeasureOpts()
			opts.reducers = r
			cell, err := runtimeCell(s, algo, dist, data, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		tab.Add(row...)
	}
	return &FigureResult{Name: "Figure 10", Tables: []*Table{tab}}, nil
}

// costValidationFigure reproduces Figure 11: the busiest mapper's and
// reducer's measured partition-wise comparison counts in MR-GPMRS runs of
// cardinality 10⁶ across dimensionalities, against the Section 6 estimates
// κ_mapper and κ_reducer for the same grid.
func costValidationFigure(s Setup) (*FigureResult, error) {
	const paperCard = 1_000_000
	res := &FigureResult{Name: "Figure 11"}
	mapTab := &Table{
		Title: fmt.Sprintf("Figure 11(a): partition-wise comparisons per mapper, card=%d", s.card(paperCard)),
		Columns: []string{"dim", "ppd",
			"measured(indep)", "estimate(indep)", "measured(anti)", "estimate(anti)"},
	}
	redTab := &Table{
		Title: fmt.Sprintf("Figure 11(b): partition-wise comparisons per reducer, card=%d", s.card(paperCard)),
		Columns: []string{"dim", "ppd",
			"measured(indep)", "estimate(indep)", "measured(anti)", "estimate(anti)"},
	}
	for d := 2; d <= 10; d++ {
		mapRow := []string{strconv.Itoa(d), ""}
		redRow := []string{strconv.Itoa(d), ""}
		var ppds []string
		for _, dist := range []datagen.Distribution{datagen.Independent, datagen.AntiCorrelated} {
			data, _ := s.dataset(dist, paperCard, d)
			m, err := runAlgorithm(AlgoGPMRS, s, data, defaultMeasureOpts())
			if err != nil {
				return nil, err
			}
			ppds = append(ppds, strconv.Itoa(m.PPD))
			mapRow = append(mapRow,
				strconv.FormatInt(m.MapperPartCmp, 10),
				strconv.FormatInt(costmodel.KappaMapper(m.PPD, d), 10))
			redRow = append(redRow,
				strconv.FormatInt(m.ReducerPartCmp, 10),
				strconv.FormatInt(costmodel.KappaReducer(m.PPD, d), 10))
		}
		// The heuristic may pick different grids per distribution; show both.
		mapRow[1] = strings.Join(ppds, "/")
		redRow[1] = strings.Join(ppds, "/")
		mapTab.Add(mapRow...)
		redTab.Add(redRow...)
	}
	res.Tables = append(res.Tables, mapTab, redTab)
	return res, nil
}
