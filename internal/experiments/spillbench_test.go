package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSpillBenchSmall runs the beyond-RAM bench at a reduced scale with
// a budget tiny enough to force spilling and multi-round merges, and
// checks the record it emits: identical outputs, spill activity recorded,
// residency peak tracked.
func TestRunSpillBenchSmall(t *testing.T) {
	rec, err := RunSpillBench(SpillBenchConfig{
		Card:   4000,
		Dim:    3,
		Seed:   2,
		Budget: 4096,
		Dir:    t.TempDir(),
		FanIn:  2,
		Slots:  2,
	})
	if err != nil {
		t.Fatalf("RunSpillBench: %v", err)
	}
	if len(rec.Algorithms) != 2 {
		t.Fatalf("algorithms = %d, want 2", len(rec.Algorithms))
	}
	for _, a := range rec.Algorithms {
		if !a.Identical {
			t.Errorf("%s: spilled output differs from in-memory output", a.Algorithm)
		}
		if a.RunsWritten == 0 || a.SpillBytes == 0 {
			t.Errorf("%s: no spill activity recorded (runs %d, bytes %d)", a.Algorithm, a.RunsWritten, a.SpillBytes)
		}
		if a.MergeRounds == 0 {
			t.Errorf("%s: no merge rounds with 8 mappers at fan-in 2", a.Algorithm)
		}
		if a.InMemorySec <= 0 || a.SpilledSec <= 0 {
			t.Errorf("%s: non-positive timings (%v, %v)", a.Algorithm, a.InMemorySec, a.SpilledSec)
		}
	}
	if rec.PeakResidentBytes <= 0 || rec.PeakResidentBytes > rec.DatasetBytes {
		t.Errorf("peak resident %d not in (0, dataset %d]", rec.PeakResidentBytes, rec.DatasetBytes)
	}

	path := filepath.Join(t.TempDir(), "BENCH_spill.json")
	if err := WriteSpillBenchJSON(path, rec); err != nil {
		t.Fatalf("WriteSpillBenchJSON: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SpillBenchRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("written JSON does not parse: %v", err)
	}
	if back.Card != 4000 || len(back.Algorithms) != 2 {
		t.Errorf("round-tripped record lost fields: %+v", back)
	}
}

func TestValidateSpillConfig(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name      string
		budget    int64
		dir       string
		budgetSet bool
		dirSet    bool
		wantErr   bool
	}{
		{"all defaults", 0, "", false, false, false},
		{"valid budget and dir", 1 << 20, dir, true, true, false},
		{"budget without dir", 1 << 20, "", true, false, false},
		{"zero budget set", 0, "", true, false, true},
		{"negative budget set", -5, "", true, false, true},
		{"empty dir set", 0, "", false, true, true},
		{"dir without budget", 0, dir, false, true, true},
		{"dir does not exist", 1 << 20, filepath.Join(dir, "missing"), true, true, true},
	}
	for _, c := range cases {
		err := ValidateSpillConfig(c.budget, c.dir, c.budgetSet, c.dirSet)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: ValidateSpillConfig(%d, %q, %v, %v) err = %v, wantErr %v",
				c.name, c.budget, c.dir, c.budgetSet, c.dirSet, err, c.wantErr)
		}
	}
}

func TestValidateWorkers(t *testing.T) {
	if err := ValidateWorkers(0); err == nil {
		t.Error("ValidateWorkers(0) accepted")
	}
	if err := ValidateWorkers(-2); err == nil {
		t.Error("ValidateWorkers(-2) accepted")
	}
	if err := ValidateWorkers(1); err != nil {
		t.Errorf("ValidateWorkers(1): %v", err)
	}
}
