package grid_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
	"mrskyline/internal/tuple"
)

// TestLocateWithinCorners (quick): every located partition's half-open box
// contains the point.
func TestLocateWithinCornersQuick(t *testing.T) {
	f := func(seed int64, dRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(dRaw%5) + 1
		n := int(nRaw%9) + 2
		g, err := grid.New(d, n)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			p := make(tuple.Tuple, d)
			for k := range p {
				p[k] = rng.Float64()
			}
			i := g.Locate(p)
			lo, hi := g.MinCorner(i), g.MaxCorner(i)
			for k := range p {
				if p[k] < lo[k] || p[k] >= hi[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPartitionDominanceIsStrictPartialOrder (quick): irreflexive,
// asymmetric, transitive on random small grids.
func TestPartitionDominanceIsStrictPartialOrder(t *testing.T) {
	f := func(dRaw, nRaw uint8) bool {
		d := int(dRaw%3) + 1
		n := int(nRaw%3) + 2
		g, err := grid.New(d, n)
		if err != nil {
			return false
		}
		total := g.NumPartitions()
		for i := 0; i < total; i++ {
			if g.PartitionDominates(i, i) {
				return false
			}
			for j := 0; j < total; j++ {
				if g.PartitionDominates(i, j) && g.PartitionDominates(j, i) {
					return false
				}
				for k := 0; k < total; k++ {
					if g.PartitionDominates(i, j) && g.PartitionDominates(j, k) && !g.PartitionDominates(i, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPruneIsIdempotentAndMonotone (quick): pruning twice equals pruning
// once, and pruning never adds bits.
func TestPruneIsIdempotentAndMonotone(t *testing.T) {
	f := func(seed int64, dRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(dRaw%3) + 1
		n := int(nRaw%4) + 2
		g, err := grid.New(d, n)
		if err != nil {
			return false
		}
		bs := bitstring.New(g.NumPartitions())
		for i := 0; i < bs.Len(); i++ {
			if rng.Intn(3) == 0 {
				bs.Set(i)
			}
		}
		orig := bs.Clone()
		g.Prune(bs)
		once := bs.Clone()
		// Monotone: surviving ⊆ original.
		for _, i := range once.Indices() {
			if !orig.Get(i) {
				return false
			}
		}
		// Idempotent? Note: pruning a *pruned* bitstring can prune further,
		// because dominators may themselves have been dominated — Eq. 2
		// prunes by occupancy, not survival. The property that does hold:
		// no tuple-bearing undominated partition is ever lost, i.e. bits
		// undominated in the ORIGINAL remain set after any number of
		// prunes of the original.
		g.Prune(bs)
		for i := 0; i < orig.Len(); i++ {
			if !orig.Get(i) {
				continue
			}
			dominated := false
			for j := 0; j < orig.Len(); j++ {
				if orig.Get(j) && g.PartitionDominates(j, i) {
					dominated = true
					break
				}
			}
			if !dominated && !once.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGroupsPartitionWorkExactly (quick): the multiset of designated
// (responsible) partitions across merged groups is exactly the surviving
// set — no partition output twice, none lost — for random bitstrings,
// reducer counts and both merge strategies.
func TestGroupsPartitionWorkExactly(t *testing.T) {
	f := func(seed int64, rRaw uint8, comm bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := grid.New(2, 5)
		if err != nil {
			return false
		}
		bs := bitstring.New(g.NumPartitions())
		for i := 0; i < bs.Len(); i++ {
			if rng.Intn(2) == 0 {
				bs.Set(i)
			}
		}
		g.Prune(bs)
		groups := g.IndependentGroups(bs)
		if len(groups) == 0 {
			return bs.Count() == 0
		}
		r := int(rRaw%6) + 1
		strat := grid.MergeByComputation
		if comm {
			strat = grid.MergeByCommunication
		}
		merged := grid.MergeGroups(groups, r, strat)
		seen := map[int]int{}
		for _, m := range merged {
			for p := range m.Responsible {
				seen[p]++
			}
		}
		for _, p := range bs.Indices() {
			if seen[p] != 1 {
				return false
			}
		}
		return len(seen) == bs.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
