package grid

import (
	"math"
)

// This file implements the "Choosing the Number of Partitions per
// Dimension" heuristic of Section 3.3. The MapReduce side (mappers emitting
// one local bitstring per candidate PPD, the reducer merging them) lives in
// internal/core; the pure arithmetic lives here.

// DefaultTPP is the desired tuples-per-partition used when the caller does
// not supply one. The paper leaves TPP open ("depends on various factors");
// Equation 3 with this default reproduces the grids its experiments imply
// at laptop scale.
const DefaultTPP = 512

// MaxCandidatePPD returns n_m, the largest candidate PPD the mappers try:
// the d-th root of the cardinality (Section 3.3, "using different PPD
// values from 2 to n_m = c^(1/d)"), additionally capped so that n^d stays
// within maxPartitions (the paper's cluster has the same practical bound —
// a bitstring must fit in the distributed cache).
func MaxCandidatePPD(card, d, maxPartitions int) int {
	if card < 1 || d < 1 {
		return 2
	}
	nm := int(math.Floor(math.Pow(float64(card), 1/float64(d))))
	// math.Pow can land just below the exact integer root; correct both ways.
	for pow(nm+1, d) <= card {
		nm++
	}
	for nm > 2 && pow(nm, d) > card {
		nm--
	}
	for nm > 2 && pow(nm, d) > maxPartitions {
		nm--
	}
	if nm < 2 {
		nm = 2
	}
	return nm
}

// PPDForTPP solves Equation 4: n = (c / TPP)^(1/d), clamped to [2, nm].
// It is the direct (non-sampled) way of choosing a PPD when the data
// distribution is assumed independent.
func PPDForTPP(card, d, tpp, maxPartitions int) int {
	if tpp < 1 {
		tpp = DefaultTPP
	}
	n := int(math.Round(math.Pow(float64(card)/float64(tpp), 1/float64(d))))
	nm := MaxCandidatePPD(card, d, maxPartitions)
	if n < 2 {
		n = 2
	}
	if n > nm {
		n = nm
	}
	return n
}

// ChoosePPD implements the reducer-side selection of Section 3.3. For each
// candidate PPD j, rho[j] is ρ — the number of non-empty partitions of the
// merged global bitstring for that PPD. The estimate for the achieved
// tuples-per-partition is TPPe = c/ρ, while Equation 3 predicts TPP = c/j^d
// under an independent distribution; the chosen PPD minimizes
// |c/ρ − c/j^d|. Candidates with ρ = 0 are skipped. Ties resolve to the
// smaller PPD, which yields the cheaper grid.
func ChoosePPD(card int, d int, rho map[int]int) int {
	best, bestDiff := 0, math.Inf(1)
	for j, r := range rho {
		if r <= 0 || j < 2 {
			continue
		}
		tppE := float64(card) / float64(r)
		tpp := float64(card) / float64(pow(j, d))
		diff := math.Abs(tppE - tpp)
		if diff < bestDiff || (diff == bestDiff && j < best) {
			best, bestDiff = j, diff
		}
	}
	if best == 0 {
		return 2
	}
	return best
}

// pow computes n^d in integer arithmetic, saturating at math.MaxInt to
// avoid overflow for absurd inputs.
func pow(n, d int) int {
	p := 1
	for i := 0; i < d; i++ {
		if p > math.MaxInt/n {
			return math.MaxInt
		}
		p *= n
	}
	return p
}
