package grid_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/grid"
	"mrskyline/internal/tuple"
)

func mustGrid(t testing.TB, d, n int) *grid.Grid {
	t.Helper()
	g, err := grid.New(d, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := grid.New(0, 3); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := grid.New(2, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := grid.New(30, 10); err == nil {
		t.Error("10^30 partitions accepted")
	}
	if _, err := grid.NewWithBounds(2, 3, tuple.Tuple{0}, tuple.Tuple{1, 1}); err == nil {
		t.Error("bounds dimensionality mismatch accepted")
	}
	if _, err := grid.NewWithBounds(1, 3, tuple.Tuple{1}, tuple.Tuple{1}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{1, 7}, {2, 3}, {3, 4}, {5, 2}, {2, 100}} {
		g := mustGrid(t, cfg.d, cfg.n)
		c := make([]int, cfg.d)
		for i := 0; i < g.NumPartitions(); i++ {
			g.Coords(i, c)
			if got := g.Index(c); got != i {
				t.Fatalf("d=%d n=%d: Index(Coords(%d)) = %d", cfg.d, cfg.n, i, got)
			}
		}
	}
}

func TestFigure2Layout(t *testing.T) {
	// The 3×3 grid of Figure 2: centre cell is p4; its DR is {p8} and its
	// ADR is {p0, p1, p3}.
	g := mustGrid(t, 2, 3)
	if g.NumPartitions() != 9 {
		t.Fatalf("NumPartitions = %d", g.NumPartitions())
	}
	if got := g.Index([]int{1, 1}); got != 4 {
		t.Fatalf("centre cell index = %d, want 4", got)
	}
	if dr := g.DR(4); len(dr) != 1 || dr[0] != 8 {
		t.Errorf("p4.DR = %v, want [8]", dr)
	}
	adr := g.ADR(4)
	want := []int{0, 1, 3}
	if len(adr) != len(want) {
		t.Fatalf("p4.ADR = %v, want %v", adr, want)
	}
	for i := range want {
		if adr[i] != want[i] {
			t.Fatalf("p4.ADR = %v, want %v", adr, want)
		}
	}
	if !g.PartitionDominates(4, 8) {
		t.Error("p4 must dominate p8")
	}
	if g.PartitionDominates(4, 5) || g.PartitionDominates(4, 7) {
		t.Error("p4 must not dominate its row/column neighbours")
	}
	if g.PartitionDominates(4, 4) {
		t.Error("a partition must not dominate itself")
	}
}

func TestCornersAndLemma1(t *testing.T) {
	// Lemma 1 via corners: if pi ≺ pj, pi.max weakly dominates pj.min.
	g := mustGrid(t, 2, 3)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if g.PartitionDominates(i, j) {
				if !tuple.DominatesWeak(g.MaxCorner(i), g.MinCorner(j)) {
					t.Errorf("p%d ≺ p%d but max corner %v does not weakly dominate min corner %v",
						i, j, g.MaxCorner(i), g.MinCorner(j))
				}
			}
		}
	}
	if got := g.MinCorner(4); !got.Equal(tuple.Tuple{1.0 / 3, 1.0 / 3}) {
		t.Errorf("p4.min = %v", got)
	}
	if got := g.MaxCorner(4); !got.Equal(tuple.Tuple{2.0 / 3, 2.0 / 3}) {
		t.Errorf("p4.max = %v", got)
	}
}

func TestADRMatchesInADRBruteForce(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 3}, {4, 2}} {
		g := mustGrid(t, cfg.d, cfg.n)
		for i := 0; i < g.NumPartitions(); i++ {
			want := map[int]bool{}
			for j := 0; j < g.NumPartitions(); j++ {
				if g.InADR(j, i) {
					want[j] = true
				}
			}
			got := g.ADR(i)
			if len(got) != len(want) {
				t.Fatalf("d=%d n=%d p%d: ADR=%v, brute force %v", cfg.d, cfg.n, i, got, want)
			}
			for _, j := range got {
				if !want[j] {
					t.Fatalf("d=%d n=%d p%d: ADR contains %d not in brute force", cfg.d, cfg.n, i, j)
				}
			}
			if g.ADRSize(i) != len(want) {
				t.Fatalf("d=%d n=%d p%d: ADRSize=%d, want %d", cfg.d, cfg.n, i, g.ADRSize(i), len(want))
			}
		}
	}
}

func TestDRMatchesPartitionDominatesBruteForce(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 3}} {
		g := mustGrid(t, cfg.d, cfg.n)
		for i := 0; i < g.NumPartitions(); i++ {
			want := map[int]bool{}
			for j := 0; j < g.NumPartitions(); j++ {
				if g.PartitionDominates(i, j) {
					want[j] = true
				}
			}
			got := g.DR(i)
			if len(got) != len(want) {
				t.Fatalf("d=%d n=%d p%d: DR=%v, brute force %v", cfg.d, cfg.n, i, got, want)
			}
			for _, j := range got {
				if !want[j] {
					t.Fatalf("d=%d n=%d p%d: DR contains %d", cfg.d, cfg.n, i, j)
				}
			}
		}
	}
}

func TestADRvsDRDuality(t *testing.T) {
	// j ∈ DR(i) implies tuples of i dominate tuples of j; then i must be in
	// ADR(j) (i may contain dominators of j).
	g := mustGrid(t, 3, 3)
	for i := 0; i < g.NumPartitions(); i++ {
		for _, j := range g.DR(i) {
			if !g.InADR(i, j) {
				t.Fatalf("p%d ∈ p%d.DR but p%d ∉ p%d.ADR", j, i, i, j)
			}
		}
	}
}

func TestLocateAndClamping(t *testing.T) {
	g := mustGrid(t, 2, 3)
	cases := []struct {
		t    tuple.Tuple
		want int
	}{
		{tuple.Tuple{0, 0}, 0},
		{tuple.Tuple{0.5, 0.5}, 4},
		{tuple.Tuple{0.99, 0.99}, 8},
		{tuple.Tuple{0.34, 0.99}, 5},
		{tuple.Tuple{-5, 0.5}, 1},  // clamps to column 0
		{tuple.Tuple{0.5, 27}, 5},  // clamps to row 2
		{tuple.Tuple{1.0, 1.0}, 8}, // exact upper bound clamps inside
		{tuple.Tuple{2, -2}, 6},    // both out of range
	}
	for _, c := range cases {
		if got := g.Locate(c.t); got != c.want {
			t.Errorf("Locate(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestLocateConsistentWithCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range []struct{ d, n int }{{2, 7}, {3, 4}, {5, 3}} {
		g := mustGrid(t, cfg.d, cfg.n)
		for trial := 0; trial < 500; trial++ {
			pt := make(tuple.Tuple, cfg.d)
			for k := range pt {
				pt[k] = rng.Float64()
			}
			i := g.Locate(pt)
			lo, hi := g.MinCorner(i), g.MaxCorner(i)
			for k := range pt {
				if pt[k] < lo[k] || pt[k] >= hi[k] {
					t.Fatalf("d=%d n=%d: %v located in p%d=[%v,%v) but outside on dim %d",
						cfg.d, cfg.n, pt, i, lo, hi, k)
				}
			}
		}
	}
}

func TestNonUnitBounds(t *testing.T) {
	g, err := grid.NewWithBounds(2, 4, tuple.Tuple{-10, 100}, tuple.Tuple{10, 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Locate(tuple.Tuple{-10, 100}); got != 0 {
		t.Errorf("lower corner located at %d", got)
	}
	if got := g.Locate(tuple.Tuple{9.99, 199.99}); got != g.NumPartitions()-1 {
		t.Errorf("upper corner located at %d", got)
	}
	if got := g.Locate(tuple.Tuple{0, 150}); got != g.Index([]int{2, 2}) {
		t.Errorf("midpoint located at %d", got)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	g := mustGrid(t, 2, 3)
	for name, fn := range map[string]func(){
		"locate-dim":  func() { g.Locate(tuple.Tuple{1}) },
		"index-range": func() { g.Index([]int{3, 0}) },
		"index-dim":   func() { g.Index([]int{1}) },
		"coords":      func() { g.Coords(9, make([]int, 2)) },
		"cellof":      func() { g.CellOf(tuple.Tuple{1}, make([]int, 1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
