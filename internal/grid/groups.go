package grid

import (
	"fmt"
	"sort"

	"mrskyline/internal/bitstring"
)

// This file implements Section 5.2 (generation of independent partition
// groups, Algorithm 7) and Section 5.4 (merging groups when there are more
// groups than reducers, and the responsible-group designation that
// eliminates duplicated skyline output).
//
// Everything here is a pure, deterministic function of the global bitstring
// and the reducer count. That determinism is load-bearing: every mapper of
// MR-GPMRS recomputes the groups independently (Algorithm 8, line 11), and
// "inconsistency of independent groups across mappers would cause wrong
// skyline results on reducers".

// Group is one independent partition group (Definition 5): a set of
// partitions closed under the anti-dominating region, so its skyline can be
// computed without looking at any other partition (Lemma 2).
type Group struct {
	// Seed is the partition the group was grown from (the "maximum
	// partition" of Definition 6 in Algorithm 7's traversal order).
	Seed int
	// Partitions lists the group's surviving partitions in ascending index
	// order; it always contains Seed. Partitions may be shared with other
	// groups (replication, Section 5.2).
	Partitions []int
	// Cost is the paper's estimated computation cost for the group:
	// |seed.ADR ∩ surviving partitions| = len(Partitions) − 1
	// (Section 5.4.1).
	Cost int
}

// IndependentGroups implements Algorithm 7. It partitions the surviving
// partitions of bs into independent groups: repeatedly take the remaining
// partition with the largest index as a seed and form the group
// {seed} ∪ (seed.ADR ∩ non-empty partitions of the original bitstring).
// Bits are cleared in a working copy only, so partitions lying in several
// seeds' anti-dominating regions are replicated into each such group, as
// Section 5.2 requires.
//
// The union of all groups covers every surviving partition, and each group
// is a down-set of the coordinate order, hence independent (∀p ∈ PI:
// p.ADR ⊆ PI).
func (g *Grid) IndependentGroups(bs *bitstring.Bitstring) []Group {
	if bs.Len() != g.total {
		panic("grid: bitstring length does not match grid size")
	}
	var groups []Group
	work := bs.Clone()
	for work.Any() {
		seed := work.HighestSet()
		members := []int{seed}
		for _, j := range g.ADR(seed) {
			if bs.Get(j) {
				members = append(members, j)
			}
		}
		sort.Ints(members)
		for _, m := range members {
			if work.Get(m) {
				work.Clear(m)
			}
		}
		groups = append(groups, Group{Seed: seed, Partitions: members, Cost: len(members) - 1})
	}
	return groups
}

// MergeStrategy selects how independent groups are combined when there are
// more groups than reducers (Section 5.4.1).
type MergeStrategy int

const (
	// MergeByComputation balances the reducers' estimated computation
	// costs (the option the paper adopts after its preliminary tests):
	// groups are assigned to the currently cheapest reducer in descending
	// cost order (greedy longest-processing-time scheduling).
	MergeByComputation MergeStrategy = iota
	// MergeByCommunication minimizes replicated traffic: each group joins
	// the reducer bucket with which it shares the most partitions. The
	// paper notes this "does not guarantee the load balance among the
	// reducers"; it is kept for the ablation benchmark.
	MergeByCommunication
)

// String implements fmt.Stringer for MergeStrategy.
func (s MergeStrategy) String() string {
	switch s {
	case MergeByComputation:
		return "computation"
	case MergeByCommunication:
		return "communication"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(s))
	}
}

// MergedGroup is the unit of work sent to one reducer: one or more
// independent groups plus the designation of which partitions this reducer
// is responsible for outputting (Section 5.4.2).
type MergedGroup struct {
	// ID is the reducer-bucket index in [0, r).
	ID int
	// Groups lists the member groups.
	Groups []Group
	// Partitions is the sorted union of the member groups' partitions.
	Partitions []int
	// Cost is the summed estimated computation cost of the members.
	Cost int
	// Responsible marks the partitions whose local skyline this reducer —
	// and only this reducer — outputs. Partitions replicated into several
	// merged groups are designated to exactly one of them.
	Responsible map[int]bool
}

// HasPartition reports whether partition p belongs to the merged group.
func (m *MergedGroup) HasPartition(p int) bool {
	i := sort.SearchInts(m.Partitions, p)
	return i < len(m.Partitions) && m.Partitions[i] == p
}

// MergeGroups distributes the independent groups over r reducers using the
// given strategy, computes each merged group's partition union, and
// designates a single responsible merged group per partition. The result
// always has length min(r, len(groups)) (empty buckets are dropped) and is
// deterministic for identical inputs.
func MergeGroups(groups []Group, r int, strat MergeStrategy) []MergedGroup {
	if r < 1 {
		panic(fmt.Sprintf("grid: reducer count must be ≥ 1, got %d", r))
	}
	if len(groups) == 0 {
		return nil
	}

	// Deterministic processing order: by descending cost, ties by seed.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		if ga.Cost != gb.Cost {
			return ga.Cost > gb.Cost
		}
		return ga.Seed < gb.Seed
	})

	nBuckets := r
	if len(groups) < r {
		nBuckets = len(groups)
	}
	buckets := make([]MergedGroup, nBuckets)
	for i := range buckets {
		buckets[i].ID = i
	}
	partsOf := make([]map[int]bool, nBuckets)
	for i := range partsOf {
		partsOf[i] = make(map[int]bool)
	}

	for _, gi := range order {
		grp := groups[gi]
		var target int
		switch strat {
		case MergeByComputation:
			// Cheapest bucket; ties to the lowest ID.
			target = 0
			for b := 1; b < nBuckets; b++ {
				if buckets[b].Cost < buckets[target].Cost {
					target = b
				}
			}
		case MergeByCommunication:
			// Bucket sharing the most partitions; empty buckets count as
			// overlap −1 so they are preferred over zero-overlap non-empty
			// buckets only when every bucket has zero overlap and all are
			// non-empty... we instead prefer: max overlap, then min cost.
			bestOverlap, bestCost := -1, 0
			target = -1
			for b := 0; b < nBuckets; b++ {
				ov := 0
				for _, p := range grp.Partitions {
					if partsOf[b][p] {
						ov++
					}
				}
				if target == -1 || ov > bestOverlap || (ov == bestOverlap && buckets[b].Cost < bestCost) {
					target, bestOverlap, bestCost = b, ov, buckets[b].Cost
				}
			}
		default:
			panic(fmt.Sprintf("grid: unknown merge strategy %d", strat))
		}
		buckets[target].Groups = append(buckets[target].Groups, grp)
		buckets[target].Cost += grp.Cost
		for _, p := range grp.Partitions {
			partsOf[target][p] = true
		}
	}

	// Materialize sorted partition unions, drop empty buckets (possible
	// when len(groups) ≥ r but LPT never fills a bucket — cannot actually
	// happen with LPT, but cheap to guard), then designate responsibility.
	out := buckets[:0]
	for i := range buckets {
		if len(buckets[i].Groups) == 0 {
			continue
		}
		parts := make([]int, 0, len(partsOf[i]))
		for p := range partsOf[i] {
			parts = append(parts, p)
		}
		sort.Ints(parts)
		buckets[i].Partitions = parts
		buckets[i].Responsible = make(map[int]bool, len(parts))
		out = append(out, buckets[i])
	}
	assignResponsibility(out)
	return out
}

// assignResponsibility designates, for every partition, the single merged
// group that outputs its skyline (Section 5.4.2). Among the merged groups
// containing a partition, the one with the minimal estimated computation
// cost is chosen ("intended to not further burden reducers that already
// have higher computation costs"); ties resolve to the lowest bucket ID so
// that mappers and reducers agree.
func assignResponsibility(merged []MergedGroup) {
	owner := make(map[int]int) // partition -> index into merged
	for i := range merged {
		for _, p := range merged[i].Partitions {
			j, seen := owner[p]
			if !seen || merged[i].Cost < merged[j].Cost {
				owner[p] = i
			}
		}
	}
	for p, i := range owner {
		merged[i].Responsible[p] = true
	}
}
