package grid_test

import (
	"math/rand"
	"reflect"
	"testing"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
)

// figure6Bitstring returns the occupancy of the Figure 6 example: non-empty
// partitions p1, p2, p3, p4, p6 of the 3×3 grid.
func figure6Bitstring(t *testing.T) *bitstring.Bitstring {
	t.Helper()
	bs, err := bitstring.Parse("011110100")
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestIndependentGroupsFigure6(t *testing.T) {
	// Section 5.2's running example: IG1 = {p3, p6}, IG2 = {p1, p3, p4},
	// IG3 = {p1, p2} — p1 and p3 are replicated across groups.
	g := mustGrid(t, 2, 3)
	groups := g.IndependentGroups(figure6Bitstring(t))
	want := []grid.Group{
		{Seed: 6, Partitions: []int{3, 6}, Cost: 1},
		{Seed: 4, Partitions: []int{1, 3, 4}, Cost: 2},
		{Seed: 2, Partitions: []int{1, 2}, Cost: 1},
	}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("IndependentGroups =\n%+v\nwant\n%+v", groups, want)
	}
}

func TestIndependentGroupsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, cfg := range []struct{ d, n int }{{1, 8}, {2, 5}, {3, 3}, {4, 2}} {
		g := mustGrid(t, cfg.d, cfg.n)
		for trial := 0; trial < 30; trial++ {
			bs := bitstring.New(g.NumPartitions())
			for i := 0; i < bs.Len(); i++ {
				if rng.Intn(3) == 0 {
					bs.Set(i)
				}
			}
			g.Prune(bs) // groups are generated from the pruned bitstring
			groups := g.IndependentGroups(bs)

			// 1. Coverage: every surviving partition appears in ≥1 group.
			covered := map[int]bool{}
			for _, grp := range groups {
				for _, p := range grp.Partitions {
					covered[p] = true
					if !bs.Get(p) {
						t.Fatalf("group %+v contains pruned/empty partition %d", grp, p)
					}
				}
			}
			for _, p := range bs.Indices() {
				if !covered[p] {
					t.Fatalf("surviving partition %d not covered by any group", p)
				}
			}

			// 2. Independence (Definition 5): for each member p, every
			// surviving partition of p.ADR is also in the group.
			for _, grp := range groups {
				members := map[int]bool{}
				for _, p := range grp.Partitions {
					members[p] = true
				}
				for _, p := range grp.Partitions {
					for _, q := range g.ADR(p) {
						if bs.Get(q) && !members[q] {
							t.Fatalf("d=%d n=%d: group seeded at %d not closed: %d ∈ ADR(%d) missing",
								cfg.d, cfg.n, grp.Seed, q, p)
						}
					}
				}
			}

			// 3. Cost convention and seed membership.
			for _, grp := range groups {
				if grp.Cost != len(grp.Partitions)-1 {
					t.Fatalf("group cost %d != len−1 (%d)", grp.Cost, len(grp.Partitions)-1)
				}
				found := false
				for _, p := range grp.Partitions {
					if p == grp.Seed {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d missing from its group", grp.Seed)
				}
			}

			// 4. Groups are not subsets of each other (Section 5.2).
			for a := range groups {
				for b := range groups {
					if a != b && isSubset(groups[a].Partitions, groups[b].Partitions) {
						t.Fatalf("group %d ⊆ group %d", a, b)
					}
				}
			}
		}
	}
}

func isSubset(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func TestIndependentGroupsEmpty(t *testing.T) {
	g := mustGrid(t, 2, 3)
	if groups := g.IndependentGroups(bitstring.New(9)); len(groups) != 0 {
		t.Errorf("empty bitstring produced %d groups", len(groups))
	}
}

func TestIndependentGroupsDeterministic(t *testing.T) {
	g := mustGrid(t, 3, 3)
	bs := bitstring.New(27)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 27; i++ {
		if rng.Intn(2) == 0 {
			bs.Set(i)
		}
	}
	a := g.IndependentGroups(bs)
	b := g.IndependentGroups(bs)
	if !reflect.DeepEqual(a, b) {
		t.Error("IndependentGroups is not deterministic")
	}
}

func TestMergeGroupsBucketCountAndCoverage(t *testing.T) {
	g := mustGrid(t, 2, 5)
	bs := bitstring.New(25)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		if rng.Intn(2) == 0 {
			bs.Set(i)
		}
	}
	g.Prune(bs)
	groups := g.IndependentGroups(bs)
	for _, strat := range []grid.MergeStrategy{grid.MergeByComputation, grid.MergeByCommunication} {
		for r := 1; r <= len(groups)+2; r++ {
			merged := grid.MergeGroups(groups, r, strat)
			wantBuckets := r
			if len(groups) < r {
				wantBuckets = len(groups)
			}
			if len(merged) != wantBuckets {
				t.Fatalf("strat=%v r=%d: %d buckets, want %d", strat, r, len(merged), wantBuckets)
			}
			// Each group appears exactly once across buckets.
			seen := 0
			for _, m := range merged {
				seen += len(m.Groups)
				// Partition union matches member groups.
				union := map[int]bool{}
				for _, grp := range m.Groups {
					for _, p := range grp.Partitions {
						union[p] = true
					}
				}
				if len(union) != len(m.Partitions) {
					t.Fatalf("strat=%v r=%d bucket %d: union size %d != %d", strat, r, m.ID, len(union), len(m.Partitions))
				}
				for _, p := range m.Partitions {
					if !union[p] {
						t.Fatalf("partition %d not in union", p)
					}
					if !m.HasPartition(p) {
						t.Fatalf("HasPartition(%d) = false for member", p)
					}
				}
				if m.HasPartition(1_000_000) {
					t.Fatal("HasPartition accepted absent partition")
				}
			}
			if seen != len(groups) {
				t.Fatalf("strat=%v r=%d: %d group placements, want %d", strat, r, seen, len(groups))
			}
		}
	}
}

func TestMergeGroupsResponsibility(t *testing.T) {
	g := mustGrid(t, 2, 4)
	bs := bitstring.New(16)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		for i := 0; i < 16; i++ {
			bs.Clear(i)
			if rng.Intn(2) == 0 {
				bs.Set(i)
			}
		}
		g.Prune(bs)
		groups := g.IndependentGroups(bs)
		if len(groups) == 0 {
			continue
		}
		for r := 1; r <= 5; r++ {
			merged := grid.MergeGroups(groups, r, grid.MergeByComputation)
			owners := map[int]int{}
			for _, m := range merged {
				for p := range m.Responsible {
					if !m.HasPartition(p) {
						t.Fatalf("bucket %d responsible for foreign partition %d", m.ID, p)
					}
					if prev, dup := owners[p]; dup {
						t.Fatalf("partition %d designated to buckets %d and %d", p, prev, m.ID)
					}
					owners[p] = m.ID
				}
			}
			// Every surviving partition has exactly one responsible bucket.
			for _, p := range bs.Indices() {
				if _, ok := owners[p]; !ok {
					t.Fatalf("partition %d has no responsible bucket", p)
				}
			}
		}
	}
}

func TestMergeGroupsLoadBalance(t *testing.T) {
	// LPT on many unit-cost groups must spread them near-evenly.
	groups := make([]grid.Group, 20)
	for i := range groups {
		groups[i] = grid.Group{Seed: i, Partitions: []int{i}, Cost: 1}
	}
	merged := grid.MergeGroups(groups, 4, grid.MergeByComputation)
	for _, m := range merged {
		if m.Cost != 5 {
			t.Errorf("bucket %d cost %d, want 5", m.ID, m.Cost)
		}
	}
}

func TestMergeGroupsDeterministic(t *testing.T) {
	g := mustGrid(t, 3, 3)
	bs := bitstring.New(27)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 27; i++ {
		if rng.Intn(2) == 0 {
			bs.Set(i)
		}
	}
	g.Prune(bs)
	groups := g.IndependentGroups(bs)
	for _, strat := range []grid.MergeStrategy{grid.MergeByComputation, grid.MergeByCommunication} {
		a := grid.MergeGroups(groups, 3, strat)
		b := grid.MergeGroups(groups, 3, strat)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("MergeGroups(%v) is not deterministic", strat)
		}
	}
}

func TestMergeGroupsEmptyAndPanics(t *testing.T) {
	if got := grid.MergeGroups(nil, 3, grid.MergeByComputation); got != nil {
		t.Errorf("merging no groups = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for r=0")
		}
	}()
	grid.MergeGroups([]grid.Group{{Seed: 0, Partitions: []int{0}}}, 0, grid.MergeByComputation)
}

func TestMergeStrategyString(t *testing.T) {
	if grid.MergeByComputation.String() != "computation" ||
		grid.MergeByCommunication.String() != "communication" {
		t.Error("MergeStrategy.String wrong")
	}
	if grid.MergeStrategy(9).String() != "MergeStrategy(9)" {
		t.Error("unknown MergeStrategy.String wrong")
	}
}
