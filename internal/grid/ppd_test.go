package grid_test

import (
	"testing"

	"mrskyline/internal/grid"
)

func TestMaxCandidatePPD(t *testing.T) {
	cases := []struct {
		card, d, maxParts int
		want              int
	}{
		{1000, 2, 1 << 20, 31},     // floor(sqrt(1000)) = 31
		{1000000, 3, 1 << 20, 100}, // floor(1e6^(1/3)) = 100
		{1000000, 2, 10000, 100},   // capped: 100^2 = 10000 allowed
		{1000000, 2, 9999, 99},     // capped below
		{10, 5, 1 << 20, 2},        // tiny cardinality floors at 2
		{0, 3, 1 << 20, 2},         // degenerate input
		{100, 0, 1 << 20, 2},       // degenerate input
	}
	for _, c := range cases {
		if got := grid.MaxCandidatePPD(c.card, c.d, c.maxParts); got != c.want {
			t.Errorf("MaxCandidatePPD(%d, %d, %d) = %d, want %d", c.card, c.d, c.maxParts, got, c.want)
		}
	}
}

func TestPPDForTPP(t *testing.T) {
	// Equation 4: n = (c/TPP)^(1/d).
	if got := grid.PPDForTPP(1_000_000, 2, 100, 1<<20); got != 100 {
		t.Errorf("PPDForTPP = %d, want 100", got)
	}
	if got := grid.PPDForTPP(8000, 3, 1000, 1<<20); got != 2 {
		t.Errorf("PPDForTPP = %d, want 2", got)
	}
	// Floors at 2 even when the formula suggests 1.
	if got := grid.PPDForTPP(100, 2, 1000, 1<<20); got != 2 {
		t.Errorf("PPDForTPP small = %d, want 2", got)
	}
	// Invalid TPP falls back to the default rather than dividing by zero.
	if got := grid.PPDForTPP(1_000_000, 2, 0, 1<<20); got < 2 {
		t.Errorf("PPDForTPP with tpp=0 = %d", got)
	}
}

func TestChoosePPD(t *testing.T) {
	// With a perfectly independent distribution, ρ ≈ j^d (all partitions
	// non-empty) and |c/ρ − c/j^d| = 0 for every candidate; ties resolve to
	// the smallest PPD.
	rho := map[int]int{2: 4, 3: 9, 4: 16}
	if got := grid.ChoosePPD(10000, 2, rho); got != 2 {
		t.Errorf("ChoosePPD uniform = %d, want 2", got)
	}

	// A clustered distribution: at j=4 only 4 of 16 partitions are
	// non-empty, making TPPe = 2500 far from TPP = 625; j=2 with all 4
	// non-empty is exact and must win.
	rho = map[int]int{2: 4, 4: 4}
	if got := grid.ChoosePPD(10000, 2, rho); got != 2 {
		t.Errorf("ChoosePPD clustered = %d, want 2", got)
	}

	// Candidates with ρ = 0 are skipped.
	rho = map[int]int{2: 0, 3: 9}
	if got := grid.ChoosePPD(900, 2, rho); got != 3 {
		t.Errorf("ChoosePPD zero-rho = %d, want 3", got)
	}

	// No usable candidates: falls back to 2.
	if got := grid.ChoosePPD(900, 2, map[int]int{}); got != 2 {
		t.Errorf("ChoosePPD empty = %d, want 2", got)
	}
}
