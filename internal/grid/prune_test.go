package grid_test

import (
	"math/rand"
	"testing"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
)

func TestPruneFigure2(t *testing.T) {
	// Non-empty partitions of Figure 2 (bitstring 011110100): none of them
	// dominates another, so pruning is a no-op.
	g := mustGrid(t, 2, 3)
	bs, err := bitstring.Parse("011110100")
	if err != nil {
		t.Fatal(err)
	}
	want := bs.Clone()
	g.Prune(bs)
	if !bs.Equal(want) {
		t.Errorf("Prune changed %s to %s", want, bs)
	}
}

func TestPruneFullGridSection6Example(t *testing.T) {
	// Section 6's running example: with every partition of the 3×3 grid
	// non-empty, p4, p5, p7 and p8 are dominated and pruned, leaving
	// ρrem(3,2) = 3² − 2² = 5 partitions (the two best surfaces).
	g := mustGrid(t, 2, 3)
	bs := bitstring.New(9)
	for i := 0; i < 9; i++ {
		bs.Set(i)
	}
	g.Prune(bs)
	if got, want := bs.String(), "111100100"; got != want {
		t.Errorf("Prune = %s, want %s", got, want)
	}
	if bs.Count() != 5 {
		t.Errorf("surviving partitions = %d, want 5", bs.Count())
	}
}

func TestPruneKeepsDominators(t *testing.T) {
	// A dominated partition is pruned even when the dominator is itself
	// dominated (occupancy, not survival, drives Equation 2).
	g := mustGrid(t, 2, 4)
	bs := bitstring.New(16)
	bs.Set(g.Index([]int{0, 0}))
	bs.Set(g.Index([]int{1, 1}))
	bs.Set(g.Index([]int{2, 2}))
	bs.Set(g.Index([]int{3, 3}))
	g.Prune(bs)
	if bs.Count() != 1 || !bs.Get(g.Index([]int{0, 0})) {
		t.Errorf("diagonal chain: survivors %v", bs.Indices())
	}
}

func TestPruneMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range []struct{ d, n int }{{1, 9}, {2, 5}, {3, 4}, {4, 3}, {5, 2}} {
		g := mustGrid(t, cfg.d, cfg.n)
		for trial := 0; trial < 40; trial++ {
			bs := bitstring.New(g.NumPartitions())
			density := rng.Float64()
			for i := 0; i < bs.Len(); i++ {
				if rng.Float64() < density {
					bs.Set(i)
				}
			}
			fast := bs.Clone()
			slow := bs.Clone()
			g.Prune(fast)
			g.PruneNaive(slow)
			if !fast.Equal(slow) {
				t.Fatalf("d=%d n=%d: Prune=%s naive=%s input=%s", cfg.d, cfg.n, fast, slow, bs)
			}
		}
	}
}

func TestPruneNeverDropsUndominatedNonEmpty(t *testing.T) {
	// A surviving bit must (a) have been set before and (b) not be
	// dominated by any set bit.
	rng := rand.New(rand.NewSource(22))
	g := mustGrid(t, 3, 3)
	for trial := 0; trial < 50; trial++ {
		bs := bitstring.New(g.NumPartitions())
		for i := 0; i < bs.Len(); i++ {
			if rng.Intn(3) == 0 {
				bs.Set(i)
			}
		}
		orig := bs.Clone()
		g.Prune(bs)
		for i := 0; i < bs.Len(); i++ {
			if bs.Get(i) && !orig.Get(i) {
				t.Fatal("Prune set a bit")
			}
			if !orig.Get(i) {
				continue
			}
			dominated := false
			for j := 0; j < bs.Len(); j++ {
				if orig.Get(j) && g.PartitionDominates(j, i) {
					dominated = true
					break
				}
			}
			if dominated == bs.Get(i) {
				t.Fatalf("partition %d: dominated=%v but surviving=%v", i, dominated, bs.Get(i))
			}
		}
	}
}

func TestPruneLengthMismatchPanics(t *testing.T) {
	g := mustGrid(t, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Prune(bitstring.New(8))
}

func BenchmarkPrune(b *testing.B) {
	g, err := grid.New(6, 6) // 46656 partitions
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bs := bitstring.New(g.NumPartitions())
	for i := 0; i < bs.Len(); i++ {
		if rng.Intn(4) == 0 {
			bs.Set(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Prune(bs.Clone())
	}
}

func TestPruneIntoLeavesOccupancyIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(4)
		g := mustGrid(t, d, n)
		occ := bitstring.New(g.NumPartitions())
		for i := 0; i < g.NumPartitions(); i++ {
			if rng.Intn(3) == 0 {
				occ.Set(i)
			}
		}
		occBefore := occ.Clone()
		want := occ.Clone()
		g.Prune(want)

		dst := bitstring.New(g.NumPartitions())
		g.PruneInto(dst, occ)
		if !dst.Equal(want) {
			t.Fatalf("trial %d: PruneInto %s, Prune %s", trial, dst, want)
		}
		if !occ.Equal(occBefore) {
			t.Fatalf("trial %d: PruneInto mutated occupancy: %s → %s", trial, occBefore, occ)
		}
		// Reusable: a second derivation into the same dst (with stale
		// contents) matches too.
		g.PruneInto(dst, occ)
		if !dst.Equal(want) {
			t.Fatalf("trial %d: second PruneInto diverged", trial)
		}
	}
}

func TestPruneIntoAliasPanics(t *testing.T) {
	g := mustGrid(t, 2, 3)
	bs := bitstring.New(g.NumPartitions())
	defer func() {
		if recover() == nil {
			t.Fatal("PruneInto(bs, bs) did not panic")
		}
	}()
	g.PruneInto(bs, bs)
}
