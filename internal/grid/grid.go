// Package grid implements the grid partitioning scheme of Section 3 of the
// paper: an n×…×n division of the d-dimensional data space into n^d
// partitions, partition dominance (Definition 2), dominating and
// anti-dominating regions (Definitions 3–4), bitstring-based partition
// pruning (Equation 2), the PPD selection heuristic (Section 3.3), and the
// independent partition groups of Section 5 (Definitions 5–6, Algorithm 7)
// together with the group merging and duplicate-elimination policies of
// Section 5.4.
//
// # Partition indexing
//
// Cells have integer coordinates c = (c_0, …, c_{d−1}) with 0 ≤ c_k < n.
// The partition index is i = c_0·n^{d−1} + c_1·n^{d−2} + … + c_{d−1}
// (dimension 0 varies slowest). This layout reproduces the examples of the
// paper exactly: in the 3×3 grid of Figure 2, the centre cell (1,1) is p4
// with DR {p8} and ADR {p0, p1, p3}.
//
// # Dominance on the grid
//
// Cells are half-open boxes [lo, hi) and tuples are therefore strictly below
// their cell's maximum corner. Consequently:
//
//   - pi ≺ pj (Definition 2) ⟺ ∀k: cj_k ≥ ci_k + 1. Weak corner dominance
//     (pi.max ≤ pj.min on every dimension) already guarantees that every
//     tuple of pi strictly dominates every tuple of pj (Lemma 1).
//   - pj ∈ pi.ADR (Definition 4) ⟺ pj ≠ pi ∧ ∀k: cj_k ≤ ci_k. Only such
//     partitions can contain a tuple dominating a tuple of pi.
package grid

import (
	"fmt"

	"mrskyline/internal/tuple"
)

// MaxPartitions bounds n^d. The bitstring and the pruning sweep materialize
// one bit (and transiently one bool) per partition, so the grid refuses
// configurations beyond this size instead of exhausting memory.
const MaxPartitions = 1 << 26

// Grid is an n×…×n partitioning of a d-dimensional box. Grids are immutable
// after construction and safe for concurrent use.
type Grid struct {
	d, n    int
	total   int
	strides []int       // strides[k] = n^{d−1−k}
	lo, hi  tuple.Tuple // data domain; cells are half-open within it
	width   []float64   // per-dimension cell width
}

// New returns a grid over the unit box [0,1)^d with n partitions per
// dimension (PPD).
func New(d, n int) (*Grid, error) {
	lo := make(tuple.Tuple, d)
	hi := make(tuple.Tuple, d)
	for k := range hi {
		hi[k] = 1
	}
	return NewWithBounds(d, n, lo, hi)
}

// NewWithBounds returns a grid over the box [lo, hi) with n partitions per
// dimension. Tuples outside the box are clamped into the boundary cells by
// Locate, so a slightly-off domain estimate degrades pruning quality but
// never correctness.
func NewWithBounds(d, n int, lo, hi tuple.Tuple) (*Grid, error) {
	if d < 1 {
		return nil, fmt.Errorf("grid: dimensionality must be ≥ 1, got %d", d)
	}
	if n < 1 {
		return nil, fmt.Errorf("grid: PPD must be ≥ 1, got %d", n)
	}
	if len(lo) != d || len(hi) != d {
		return nil, fmt.Errorf("grid: bounds dimensionality %d/%d does not match d=%d", len(lo), len(hi), d)
	}
	total := 1
	for k := 0; k < d; k++ {
		if hi[k] <= lo[k] {
			return nil, fmt.Errorf("grid: empty domain on dimension %d: [%g, %g)", k, lo[k], hi[k])
		}
		if total > MaxPartitions/n {
			return nil, fmt.Errorf("grid: n^d = %d^%d exceeds MaxPartitions (%d)", n, d, MaxPartitions)
		}
		total *= n
	}
	g := &Grid{
		d:       d,
		n:       n,
		total:   total,
		strides: make([]int, d),
		lo:      lo.Clone(),
		hi:      hi.Clone(),
		width:   make([]float64, d),
	}
	s := 1
	for k := d - 1; k >= 0; k-- {
		g.strides[k] = s
		s *= n
	}
	for k := 0; k < d; k++ {
		g.width[k] = (hi[k] - lo[k]) / float64(n)
	}
	return g, nil
}

// Dim returns the dimensionality d.
func (g *Grid) Dim() int { return g.d }

// PPD returns the partitions-per-dimension n.
func (g *Grid) PPD() int { return g.n }

// NumPartitions returns n^d, the length of the grid's bitstrings.
func (g *Grid) NumPartitions() int { return g.total }

// Lo returns the inclusive lower corner of the data domain.
func (g *Grid) Lo() tuple.Tuple { return g.lo.Clone() }

// Hi returns the exclusive upper corner of the data domain.
func (g *Grid) Hi() tuple.Tuple { return g.hi.Clone() }

// CellOf writes the cell coordinates of t into dst (which must have length
// d) and returns dst. Out-of-domain values clamp to the boundary cells.
func (g *Grid) CellOf(t tuple.Tuple, dst []int) []int {
	if len(t) != g.d {
		panic(fmt.Sprintf("grid: tuple dimensionality %d does not match grid d=%d", len(t), g.d))
	}
	for k := 0; k < g.d; k++ {
		c := int((t[k] - g.lo[k]) / g.width[k])
		if c < 0 {
			c = 0
		} else if c >= g.n {
			c = g.n - 1
		}
		dst[k] = c
	}
	return dst
}

// Locate returns the partition index of t ("Decide the partition p_j that t
// belongs to", Algorithms 1, 3 and 8).
func (g *Grid) Locate(t tuple.Tuple) int {
	if len(t) != g.d {
		panic(fmt.Sprintf("grid: tuple dimensionality %d does not match grid d=%d", len(t), g.d))
	}
	i := 0
	for k := 0; k < g.d; k++ {
		c := int((t[k] - g.lo[k]) / g.width[k])
		if c < 0 {
			c = 0
		} else if c >= g.n {
			c = g.n - 1
		}
		i += c * g.strides[k]
	}
	return i
}

// Index converts cell coordinates to a partition index.
func (g *Grid) Index(c []int) int {
	if len(c) != g.d {
		panic(fmt.Sprintf("grid: coordinate dimensionality %d does not match d=%d", len(c), g.d))
	}
	i := 0
	for k, v := range c {
		if v < 0 || v >= g.n {
			panic(fmt.Sprintf("grid: coordinate %d out of range [0,%d) on dimension %d", v, g.n, k))
		}
		i += v * g.strides[k]
	}
	return i
}

// Coords writes the cell coordinates of partition i into dst (length d)
// and returns dst.
func (g *Grid) Coords(i int, dst []int) []int {
	if i < 0 || i >= g.total {
		panic(fmt.Sprintf("grid: partition index %d out of range [0,%d)", i, g.total))
	}
	for k := 0; k < g.d; k++ {
		dst[k] = i / g.strides[k]
		i %= g.strides[k]
	}
	return dst
}

// MinCorner returns p_i.min, the best (lowest) corner of partition i.
func (g *Grid) MinCorner(i int) tuple.Tuple {
	c := g.Coords(i, make([]int, g.d))
	t := make(tuple.Tuple, g.d)
	for k := 0; k < g.d; k++ {
		t[k] = g.lo[k] + float64(c[k])*g.width[k]
	}
	return t
}

// MaxCorner returns p_i.max, the worst (highest) corner of partition i.
func (g *Grid) MaxCorner(i int) tuple.Tuple {
	c := g.Coords(i, make([]int, g.d))
	t := make(tuple.Tuple, g.d)
	for k := 0; k < g.d; k++ {
		t[k] = g.lo[k] + float64(c[k]+1)*g.width[k]
	}
	return t
}

// PartitionDominates reports whether p_i ≺ p_j (Definition 2): every tuple
// of p_i dominates every tuple of p_j (Lemma 1).
func (g *Grid) PartitionDominates(i, j int) bool {
	ci := g.Coords(i, make([]int, g.d))
	cj := g.Coords(j, make([]int, g.d))
	for k := 0; k < g.d; k++ {
		if cj[k] < ci[k]+1 {
			return false
		}
	}
	return true
}

// InADR reports whether p_j ∈ p_i.ADR (Definition 4): p_j may contain
// tuples that dominate tuples of p_i.
func (g *Grid) InADR(j, i int) bool {
	if i == j {
		return false
	}
	ci := g.Coords(i, make([]int, g.d))
	cj := g.Coords(j, make([]int, g.d))
	for k := 0; k < g.d; k++ {
		if cj[k] > ci[k] {
			return false
		}
	}
	return true
}

// ADR enumerates p_i.ADR in ascending index order: all partitions whose
// cell coordinates are ≤ p_i's on every dimension, excluding p_i itself.
func (g *Grid) ADR(i int) []int {
	ci := g.Coords(i, make([]int, g.d))
	out := make([]int, 0, g.ADRSize(i))
	c := make([]int, g.d)
	g.enumerateBox(c, 0, 0, ci, func(idx int) {
		if idx != i {
			out = append(out, idx)
		}
	})
	return out
}

// DR enumerates p_i.DR (Definition 3) in ascending index order: all
// partitions strictly greater than p_i on every dimension.
func (g *Grid) DR(i int) []int {
	ci := g.Coords(i, make([]int, g.d))
	size := 1
	for k := 0; k < g.d; k++ {
		size *= g.n - 1 - ci[k]
		if size <= 0 {
			return nil
		}
	}
	out := make([]int, 0, size)
	lo := make([]int, g.d)
	hi := make([]int, g.d)
	for k := 0; k < g.d; k++ {
		lo[k] = ci[k] + 1
		hi[k] = g.n - 1
	}
	c := append([]int(nil), lo...)
	g.enumerateRange(c, 0, lo, hi, func(idx int) { out = append(out, idx) })
	return out
}

// ADRSize returns |p_i.ADR| without enumerating it: ∏(c_k + 1) − 1.
// Section 5.4 uses it as the estimated computation cost of a group.
func (g *Grid) ADRSize(i int) int {
	ci := g.Coords(i, make([]int, g.d))
	size := 1
	for k := 0; k < g.d; k++ {
		size *= ci[k] + 1
	}
	return size - 1
}

// enumerateBox visits all cells with coordinates in [0, hi[k]] per
// dimension, invoking fn with each partition index.
func (g *Grid) enumerateBox(c []int, k, base int, hi []int, fn func(int)) {
	if k == g.d {
		fn(base)
		return
	}
	for v := 0; v <= hi[k]; v++ {
		c[k] = v
		g.enumerateBox(c, k+1, base+v*g.strides[k], hi, fn)
	}
}

// enumerateRange visits all cells with coordinates in [lo[k], hi[k]] per
// dimension.
func (g *Grid) enumerateRange(c []int, k int, lo, hi []int, fn func(int)) {
	if k == g.d {
		fn(g.Index(c))
		return
	}
	for v := lo[k]; v <= hi[k]; v++ {
		c[k] = v
		g.enumerateRange(c, k+1, lo, hi, fn)
	}
}
