package grid

import (
	"mrskyline/internal/bitstring"
)

// Prune applies the partition pruning of Equation 2 in place: every bit
// whose partition is dominated by some non-empty partition is cleared.
// On entry bs must hold the occupancy bitstring of Equation 1 (bit i set ⟺
// p_i non-empty); on return bit i is set ⟺ p_i is non-empty and not
// dominated by any non-empty partition.
//
// The sweep runs in O(d·n^d) regardless of how many partitions are
// non-empty. Let reach[c] = "some non-empty cell is ≤ c on every dimension"
// — a d-dimensional prefix-OR of the occupancy array, computed one
// dimension at a time. A cell c is dominated exactly when reach[c − 1⃗]
// holds (1⃗ the all-ones vector), because a dominating cell must be
// strictly below c on every dimension.
func (g *Grid) Prune(bs *bitstring.Bitstring) {
	if bs.Len() != g.total {
		panic("grid: bitstring length does not match grid size")
	}
	reach := make([]bool, g.total)
	bs.ForEachSet(func(i int) bool {
		reach[i] = true
		return true
	})
	// Prefix-OR along each dimension in turn. After processing dimension k,
	// reach[c] accounts for all cells ≤ c on dimensions 0..k and equal on
	// the rest; after all dimensions it is the full downward closure.
	for k := 0; k < g.d; k++ {
		stride := g.strides[k]
		for i := 0; i < g.total; i++ {
			// Coordinate of cell i on dimension k.
			if (i/stride)%g.n == 0 {
				continue
			}
			if reach[i-stride] {
				reach[i] = true
			}
		}
	}
	// Clear cells whose "all coordinates minus one" predecessor is reached.
	diag := 0
	for k := 0; k < g.d; k++ {
		diag += g.strides[k]
	}
	c := make([]int, g.d)
	bs.ForEachSet(func(i int) bool {
		g.Coords(i, c)
		for k := 0; k < g.d; k++ {
			if c[k] == 0 {
				return true // touches a best boundary: cannot be dominated
			}
		}
		if reach[i-diag] {
			bs.Clear(i)
		}
		return true
	})
}

// PruneInto re-derives the surviving-partition bitstring from an occupancy
// bitstring without consuming it: dst is overwritten with occ and then
// pruned in place, so on return bit i of dst is set ⟺ p_i is non-empty and
// not dominated by any non-empty partition, while occ is left untouched.
// Callers that keep the occupancy bitstring resident across deltas (the
// incremental maintainer) use it to refresh survivors after each batch.
// dst must not alias occ and both must match the grid's size.
func (g *Grid) PruneInto(dst, occ *bitstring.Bitstring) {
	if dst == occ {
		panic("grid: PruneInto dst must not alias occ")
	}
	dst.CopyFrom(occ)
	g.Prune(dst)
}

// pruneNaive is the O(ρ·n^d) reference implementation of Equation 2 used to
// cross-check Prune in tests: for every non-empty partition, clear all
// partitions in its dominating region.
func (g *Grid) pruneNaive(bs *bitstring.Bitstring) {
	if bs.Len() != g.total {
		panic("grid: bitstring length does not match grid size")
	}
	dominated := bitstring.New(g.total)
	bs.ForEachSet(func(i int) bool {
		for _, j := range g.DR(i) {
			dominated.Set(j)
		}
		return true
	})
	bs.AndNot(dominated)
}
