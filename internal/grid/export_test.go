package grid

import "mrskyline/internal/bitstring"

// PruneNaive exposes the reference pruning implementation to tests.
func (g *Grid) PruneNaive(bs *bitstring.Bitstring) { g.pruneNaive(bs) }
