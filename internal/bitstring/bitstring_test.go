package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSetClearGet(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Errorf("bit %d set after Clear", i)
		}
	}
}

func TestFigure2Example(t *testing.T) {
	// The running example of Section 3.2: non-empty partitions of the 3×3
	// grid give bitstring 011110100.
	b, err := Parse("011110100")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "011110100" {
		t.Errorf("round trip = %q", got)
	}
	if got := b.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	want := []int{1, 2, 3, 4, 6}
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	if got := b.HighestSet(); got != 6 {
		t.Errorf("HighestSet = %d, want 6", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("0120"); err == nil {
		t.Error("Parse accepted invalid character")
	}
}

func TestOrMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ref[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				ref[i] = true
			}
		}
		a.Or(b)
		for i := 0; i < n; i++ {
			if a.Get(i) != ref[i] {
				t.Fatalf("n=%d bit %d: got %v want %v", n, i, a.Get(i), ref[i])
			}
		}
	}
}

func TestAndNot(t *testing.T) {
	a := FromIndices(10, 1, 2, 3, 7)
	b := FromIndices(10, 2, 7, 9)
	a.AndNot(b)
	if got, want := a.String(), "0101000000"; got != want {
		t.Errorf("AndNot = %q, want %q", got, want)
	}
}

func TestCountAndAny(t *testing.T) {
	b := New(200)
	if b.Any() {
		t.Error("empty bitstring Any = true")
	}
	if b.Count() != 0 {
		t.Error("empty bitstring Count != 0")
	}
	b.Set(199)
	if !b.Any() || b.Count() != 1 {
		t.Error("single-bit bitstring misbehaves")
	}
}

func TestHighestSetEmpty(t *testing.T) {
	if got := New(77).HighestSet(); got != -1 {
		t.Errorf("HighestSet on empty = %d, want -1", got)
	}
}

func TestForEachSetEarlyStop(t *testing.T) {
	b := FromIndices(100, 5, 50, 95)
	var seen []int
	b.ForEachSet(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 50 {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromIndices(70, 3, 69)
	c := a.Clone()
	c.Clear(3)
	if !a.Get(3) {
		t.Error("Clone shares storage with original")
	}
	if !c.Get(69) || c.Get(3) {
		t.Error("Clone content wrong")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(65, 0, 64)
	b := FromIndices(65, 0, 64)
	if !a.Equal(b) {
		t.Error("identical bitstrings not Equal")
	}
	b.Clear(64)
	if a.Equal(b) {
		t.Error("different bitstrings Equal")
	}
	if a.Equal(New(66)) {
		t.Error("different lengths Equal")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		enc := b.Encode()
		dec, used, err := Decode(enc)
		return err == nil && used == len(enc) && dec.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := FromIndices(100, 1, 99).Encode()
	for i := 0; i < len(enc); i++ {
		if _, _, err := Decode(enc[:i]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", i, len(enc))
		}
	}
}

func TestDecodeRejectsTrailingBits(t *testing.T) {
	// Claim 4 bits but set bit 10 in the word: must be rejected.
	b := FromIndices(64, 10)
	enc := b.Encode()
	enc[0] = 4 // shrink declared length to 4 bits
	if _, _, err := Decode(enc); err == nil {
		t.Error("trailing garbage bits accepted")
	}
}

func TestZeroLength(t *testing.T) {
	b := New(0)
	if b.Any() || b.Count() != 0 || b.HighestSet() != -1 {
		t.Error("zero-length bitstring misbehaves")
	}
	enc := b.Encode()
	dec, _, err := Decode(enc)
	if err != nil || dec.Len() != 0 {
		t.Errorf("zero-length round trip failed: %v", err)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Or(New(11))
}

func BenchmarkOr(b *testing.B) {
	x, y := New(1<<16), New(1<<16)
	for i := 0; i < 1<<16; i += 17 {
		y.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkForEachSet(b *testing.B) {
	x := New(1 << 16)
	for i := 0; i < 1<<16; i += 5 {
		x.Set(i)
	}
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEachSet(func(j int) bool { sum += j; return true })
	}
	_ = sum
}

func TestAnd(t *testing.T) {
	a := FromIndices(10, 1, 2, 3, 7)
	b := FromIndices(10, 2, 7, 9)
	a.And(b)
	if got, want := a.String(), "0010000100"; got != want {
		t.Errorf("And = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	a.And(New(11))
}

func TestCopyFrom(t *testing.T) {
	src := FromIndices(130, 0, 63, 64, 129)
	dst := FromIndices(130, 5, 70)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom: dst %s != src %s", dst, src)
	}
	// Deep: mutating dst afterwards leaves src alone.
	dst.Set(7)
	if src.Get(7) {
		t.Fatal("CopyFrom aliased the word arrays")
	}
	// Stale dst bits are fully overwritten, not OR-merged.
	if dst.Get(5) || dst.Get(70) {
		t.Fatal("CopyFrom kept stale destination bits")
	}
}

func TestCopyFromLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched lengths did not panic")
		}
	}()
	New(10).CopyFrom(New(11))
}
