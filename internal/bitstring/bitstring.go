// Package bitstring implements the compact bitstring the paper uses to
// represent the state of the grid partitioning (Section 3.2).
//
// A Bitstring holds one bit per grid partition: bit i is 1 while partition
// p_i is considered "interesting" — non-empty and not yet pruned by
// partition dominance. Local bitstrings produced by mappers are merged with
// bitwise OR on the reducer (Algorithm 2); the global bitstring is then
// shipped to every task through the distributed cache.
//
// The representation is a []uint64 word array. It is deliberately free of
// any grid knowledge: index mathematics lives in internal/grid.
package bitstring

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitstring is a fixed-length sequence of bits. The zero value is an empty
// bitstring of length 0; use New to create a sized one.
type Bitstring struct {
	n     int
	words []uint64
}

// New returns a bitstring of n bits, all zero.
func New(n int) *Bitstring {
	if n < 0 {
		panic(fmt.Sprintf("bitstring: negative length %d", n))
	}
	return &Bitstring{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a bitstring of n bits with exactly the given bits set.
func FromIndices(n int, idx ...int) *Bitstring {
	bs := New(n)
	for _, i := range idx {
		bs.Set(i)
	}
	return bs
}

// Len returns the number of bits.
func (b *Bitstring) Len() int { return b.n }

// check panics on out-of-range access; partition indexes are computed, so an
// out-of-range index is always a bug in the caller.
func (b *Bitstring) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, b.n))
	}
}

// Set sets bit i to 1.
func (b *Bitstring) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (b *Bitstring) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is 1.
func (b *Bitstring) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Or merges other into b with bitwise OR (BS_R = BS_R1 ∨ BS_R2 ∨ ...).
// Both bitstrings must have the same length.
func (b *Bitstring) Or(other *Bitstring) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And intersects b with other in place.
func (b *Bitstring) And(other *Bitstring) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot clears every bit of b that is set in other.
func (b *Bitstring) AndNot(other *Bitstring) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Count returns the number of set bits (the ρ of Section 3.3).
func (b *Bitstring) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set (the loop condition of
// Algorithm 7: "while BS_R ≠ 0").
func (b *Bitstring) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// CopyFrom overwrites b's bits with other's. Both bitstrings must have the
// same length. It is the allocation-free alternative to Clone for callers
// that re-derive one bitstring from another repeatedly (the incremental
// skyline maintainer recomputes survivors from occupancy per delta batch).
func (b *Bitstring) CopyFrom(other *Bitstring) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", b.n, other.n))
	}
	copy(b.words, other.words)
}

// Clone returns a deep copy.
func (b *Bitstring) Clone() *Bitstring {
	c := &Bitstring{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Equal reports whether both bitstrings have identical length and bits.
func (b *Bitstring) Equal(other *Bitstring) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// HighestSet returns the index of the highest set bit, or -1 if none is set.
// Algorithm 7 uses it to pick the seed partition "with the largest index".
func (b *Bitstring) HighestSet() int {
	for i := len(b.words) - 1; i >= 0; i-- {
		if w := b.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// ForEachSet calls fn for every set bit in ascending index order.
// If fn returns false, iteration stops early.
func (b *Bitstring) ForEachSet(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the indexes of all set bits in ascending order.
func (b *Bitstring) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEachSet(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the bits most-significant-last, e.g. "011110100" for the
// running example of Figure 2 (bit 0 first, matching the paper's notation
// BS_R(0, 1, 2, ..., n^d − 1)).
func (b *Bitstring) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a bitstring from a textual form as produced by String.
func Parse(s string) (*Bitstring, error) {
	b := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			b.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitstring: invalid character %q at position %d", s[i], i)
		}
	}
	return b, nil
}

// Wire format: uvarint bit count | ceil(n/64) × uint64 words (little endian).

// AppendEncode appends the wire encoding of b to dst.
func (b *Bitstring) AppendEncode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.n))
	for _, w := range b.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// Encode returns the wire encoding of b.
func (b *Bitstring) Encode() []byte {
	return b.AppendEncode(make([]byte, 0, binary.MaxVarintLen64+8*len(b.words)))
}

// Decode parses one bitstring from the front of buf, returning it and the
// number of bytes consumed.
func Decode(buf []byte) (*Bitstring, int, error) {
	n, hdr := binary.Uvarint(buf)
	if hdr <= 0 {
		return nil, 0, fmt.Errorf("bitstring: truncated length header")
	}
	if n/8 > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("bitstring: truncated payload: %d bits with %d bytes left", n, len(buf)-hdr)
	}
	words := (int(n) + wordBits - 1) / wordBits
	if len(buf)-hdr < words*8 {
		return nil, 0, fmt.Errorf("bitstring: truncated payload: %d bits with %d bytes left", n, len(buf)-hdr)
	}
	b := &Bitstring{n: int(n), words: make([]uint64, words)}
	off := hdr
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	// Reject garbage beyond the declared length: trailing bits in the last
	// word must be zero for Equal/Count to behave.
	if words > 0 {
		if extra := words*wordBits - int(n); extra > 0 {
			if b.words[words-1]>>(wordBits-uint(extra)) != 0 {
				return nil, 0, fmt.Errorf("bitstring: nonzero bits beyond declared length %d", n)
			}
		}
	}
	return b, off, nil
}
