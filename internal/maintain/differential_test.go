package maintain

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// TestDifferential30Seeds is the acceptance differential: 30 random
// insert/delete workloads, and after EVERY delta batch the maintained
// skyline must be byte-identical to a full recompute — both the naive
// oracle over the resident multiset (set semantics, order-free) and a
// fresh grid build over Rows() on the same grid (ordered, byte-for-byte).
//
// The workloads deliberately include duplicate tuples, deltas landing in
// pruned cells (clustered far-corner churn), out-of-domain rows, deletes
// of absent tuples, and periodic NaN batches that must be rejected with
// no state change. Run under -race in CI alongside the concurrent-reader
// test.
func TestDifferential30Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short")
	}
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runDifferential(t, seed)
		})
	}
}

func runDifferential(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + rng.Intn(3) // 2..4 dimensions
	card := 100 + rng.Intn(200)
	cfg := Config{
		PPD: 2 + rng.Intn(6),
		Lo:  make([]float64, d),
		Hi:  ones(d),
	}
	data := randomRows(rng, card, d)
	m, err := New(data.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// resident shadows the maintained multiset with the same
	// delete-first-equal semantics.
	resident := data.Clone()

	batches := 25
	for b := 0; b < batches; b++ {
		var batch []Delta
		ops := 1 + rng.Intn(12)
		for o := 0; o < ops; o++ {
			switch {
			case rng.Float64() < 0.45 && len(resident) > 0:
				// Delete a resident row (occasionally an absent one).
				if rng.Float64() < 0.1 {
					batch = append(batch, Delta{Op: OpDelete, Row: tuple.Tuple{42, 42, 42, 42}[:d].Clone()})
					break
				}
				j := rng.Intn(len(resident))
				row := resident[j].Clone()
				batch = append(batch, Delta{Op: OpDelete, Row: row})
				resident = deleteFirstEqual(resident, row)
			case rng.Float64() < 0.15 && len(resident) > 0:
				// Duplicate insert: an exact copy of a resident row.
				row := resident[rng.Intn(len(resident))].Clone()
				batch = append(batch, Delta{Op: OpInsert, Row: row.Clone()})
				resident = append(resident, row)
			case rng.Float64() < 0.15:
				// Pruned-cell churn: a clustered far-corner row, almost
				// always in a dominated partition.
				row := make(tuple.Tuple, d)
				for k := range row {
					row[k] = 0.9 + rng.Float64()*0.1
				}
				batch = append(batch, Delta{Op: OpInsert, Row: row.Clone()})
				resident = append(resident, row)
			case rng.Float64() < 0.1:
				// Out-of-domain row: clamps into a boundary cell.
				row := make(tuple.Tuple, d)
				for k := range row {
					row[k] = rng.Float64()*4 - 2
				}
				batch = append(batch, Delta{Op: OpInsert, Row: row.Clone()})
				resident = append(resident, row)
			default:
				row := randomRows(rng, 1, d)[0]
				batch = append(batch, Delta{Op: OpInsert, Row: row.Clone()})
				resident = append(resident, row)
			}
		}
		if _, err := m.Apply(batch); err != nil {
			t.Fatalf("seed %d batch %d: %v", seed, b, err)
		}

		// Every 5th batch: a NaN insert must reject atomically.
		if b%5 == 4 {
			gen := m.Generation()
			bad := make(tuple.Tuple, d)
			bad[rng.Intn(d)] = math.NaN()
			if _, err := m.Apply([]Delta{
				{Op: OpInsert, Row: randomRows(rng, 1, d)[0]},
				{Op: OpInsert, Row: bad},
			}); err == nil {
				t.Fatalf("seed %d batch %d: NaN batch accepted", seed, b)
			}
			if m.Generation() != gen {
				t.Fatalf("seed %d batch %d: rejected batch advanced generation", seed, b)
			}
		}

		// Multiset differential against the naive oracle.
		got := sortedRows(m.Snapshot().Skyline)
		want := sortedRows(skyline.Naive(resident))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d batch %d: skyline mismatch (%d vs %d rows)\n got  %v\n want %v",
				seed, b, len(got), len(want), got, want)
		}

		// Byte-identical differential against a full rebuild on the same
		// grid: same tuples in the same order.
		fresh, err := New(m.Rows(), cfg)
		if err != nil {
			t.Fatalf("seed %d batch %d: rebuild: %v", seed, b, err)
		}
		if !reflect.DeepEqual(m.Snapshot().Skyline, fresh.Snapshot().Skyline) {
			t.Fatalf("seed %d batch %d: incremental and rebuilt skylines differ in content or order",
				seed, b)
		}
		if m.Size() != len(resident) {
			t.Fatalf("seed %d batch %d: Size %d, shadow %d", seed, b, m.Size(), len(resident))
		}
	}
}

func randomRows(rng *rand.Rand, n, d int) tuple.List {
	out := make(tuple.List, n)
	for i := range out {
		row := make(tuple.Tuple, d)
		for k := range row {
			// Two-decimal grid so duplicates and ties occur naturally.
			row[k] = math.Round(rng.Float64()*100) / 100
		}
		out[i] = row
	}
	return out
}

func ones(d int) []float64 {
	out := make([]float64, d)
	for k := range out {
		out[k] = 1
	}
	return out
}

// deleteFirstEqual removes the first row equal to t, mirroring the
// maintainer's delete semantics on the shadow multiset.
func deleteFirstEqual(l tuple.List, row tuple.Tuple) tuple.List {
	for i, u := range l {
		if u.Equal(row) {
			return append(l[:i], l[i+1:]...)
		}
	}
	return l
}
