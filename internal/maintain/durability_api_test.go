package maintain

// Tests for the surface internal/wal builds on: arrival-order row
// export, explicit grid/generation reseeding, and standalone batch
// validation. The invariant under test is the one the durability layer's
// byte-identity claim rests on — reseeding New with ArrivalRows and the
// original grid reproduces the exact published state.

import (
	"math/rand"
	"reflect"
	"testing"

	"mrskyline/internal/tuple"
)

func randRows(rng *rand.Rand, n, dim int) tuple.List {
	rows := make(tuple.List, n)
	for i := range rows {
		rows[i] = make(tuple.Tuple, dim)
		for d := range rows[i] {
			rows[i][d] = rng.Float64()
		}
	}
	return rows
}

func TestArrivalRowsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seed := randRows(rng, 20, 3)
	m, err := New(seed.Clone(), Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Before churn, arrival order is exactly the seed order.
	if got := m.ArrivalRows(); !reflect.DeepEqual(got, seed) {
		t.Fatalf("ArrivalRows after seeding differs from the seed order")
	}
	// Inserts extend the order; deletes remove without reordering.
	extra := randRows(rng, 5, 3)
	for _, r := range extra {
		if _, err := m.Apply([]Delta{{Op: OpInsert, Row: r.Clone()}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Apply([]Delta{{Op: OpDelete, Row: seed[7].Clone()}}); err != nil {
		t.Fatal(err)
	}
	want := append(append(tuple.List{}, seed[:7]...), seed[8:]...)
	want = append(want, extra...)
	if got := m.ArrivalRows(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ArrivalRows after churn is not arrival order minus deletions")
	}
}

// TestReseedReproducesState is the checkpoint/recovery contract:
// New(ArrivalRows, same grid, SeedGen=gen) must reproduce the published
// snapshot byte for byte and stay byte-identical under further batches.
func TestReseedReproducesState(t *testing.T) {
	// Run one history twice — original vs checkpoint-at-batch-14 + replay —
	// and compare final states.
	rng2 := rand.New(rand.NewSource(12))
	orig, err := New(randRows(rng2, 30, 3), Config{Dim: 3, PPD: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reseeded *Maintained
	for i := 0; i < 25; i++ {
		batch := []Delta{{Op: OpInsert, Row: randRows(rng2, 1, 3)[0]}}
		if i%4 == 3 {
			rows := orig.ArrivalRows()
			batch = append(batch, Delta{Op: OpDelete, Row: rows[rng2.Intn(len(rows))].Clone()})
		}
		if _, err := orig.Apply(cloneBatch(batch)); err != nil {
			t.Fatal(err)
		}
		if reseeded != nil {
			if _, err := reseeded.Apply(cloneBatch(batch)); err != nil {
				t.Fatal(err)
			}
		}
		if i == 14 {
			// "Checkpoint": reseed from arrival rows with the explicit grid.
			glo, ghi := orig.Bounds()
			reseeded, err = New(orig.ArrivalRows(), Config{
				Dim: 3, PPD: orig.PPD(), Lo: glo, Hi: ghi, SeedGen: orig.Generation(),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	os, rs := orig.Snapshot(), reseeded.Snapshot()
	if os.Gen != rs.Gen {
		t.Fatalf("generation diverged: orig %d, reseeded %d", os.Gen, rs.Gen)
	}
	if !reflect.DeepEqual(os.Skyline, rs.Skyline) {
		t.Fatalf("skyline diverged after reseed+replay")
	}
	if !reflect.DeepEqual(orig.ArrivalRows(), reseeded.ArrivalRows()) {
		t.Fatalf("arrival order diverged after reseed+replay")
	}
}

func cloneBatch(b []Delta) []Delta {
	out := make([]Delta, len(b))
	for i, d := range b {
		out[i] = Delta{Op: d.Op, Row: d.Row.Clone()}
	}
	return out
}

func TestSeedGen(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, err := New(randRows(rng, 5, 2), Config{Dim: 2, SeedGen: 41})
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(); g != 41 {
		t.Fatalf("seed generation = %d, want 41", g)
	}
	res, err := m.Apply([]Delta{{Op: OpInsert, Row: tuple.Tuple{0.5, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 42 {
		t.Fatalf("generation after one batch = %d, want 42", res.Gen)
	}
	// Zero keeps the default of 1.
	m0, err := New(randRows(rng, 5, 2), Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g := m0.Generation(); g != 1 {
		t.Fatalf("default seed generation = %d, want 1", g)
	}
}

func TestCheckBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m, err := New(randRows(rng, 5, 3), Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	ok := []Delta{
		{Op: OpInsert, Row: tuple.Tuple{0.1, 0.2, 0.3}},
		{Op: OpDelete, Row: tuple.Tuple{0.4, 0.5, 0.6}},
	}
	if err := m.CheckBatch(ok); err != nil {
		t.Fatalf("CheckBatch rejected a valid batch: %v", err)
	}
	bad := [][]Delta{
		{{Op: OpInsert, Row: tuple.Tuple{0.1, 0.2}}},           // wrong dim
		{{Op: Op(9), Row: tuple.Tuple{0.1, 0.2, 0.3}}},         // unknown op
		{{Op: OpInsert, Row: tuple.Tuple{0.1, 0.2, nan()}}},    // NaN
	}
	gen := m.Generation()
	for i, b := range bad {
		if err := m.CheckBatch(b); err == nil {
			t.Fatalf("CheckBatch accepted invalid batch %d", i)
		}
		if _, err := m.Apply(b); err == nil {
			t.Fatalf("Apply accepted invalid batch %d", i)
		}
	}
	if m.Generation() != gen {
		t.Fatalf("rejected batches changed the generation")
	}
	// Sliding windows reject deletes at validation time too.
	w, err := New(randRows(rng, 3, 3), Config{Dim: 3, WindowCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CheckBatch([]Delta{{Op: OpDelete, Row: tuple.Tuple{0.1, 0.2, 0.3}}}); err == nil {
		t.Fatal("CheckBatch accepted a delete on a sliding window")
	}
	if w.WindowCap() != 4 {
		t.Fatalf("WindowCap = %d, want 4", w.WindowCap())
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestBoundsReturnsGridDomain(t *testing.T) {
	m, err := New(tuple.List{{0.2, 0.8}, {0.4, 0.1}}, Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Bounds()
	if len(lo) != 2 || len(hi) != 2 {
		t.Fatalf("Bounds dimensionality: lo %d, hi %d", len(lo), len(hi))
	}
	for d := 0; d < 2; d++ {
		if lo[d] > hi[d] {
			t.Fatalf("lo[%d]=%v > hi[%d]=%v", d, lo[d], d, hi[d])
		}
	}
	// Reseeding with the explicit domain must accept rows on it.
	if _, err := New(tuple.List{{0.3, 0.3}}, Config{Dim: 2, PPD: m.PPD(), Lo: lo, Hi: hi}); err != nil {
		t.Fatalf("explicit-domain reseed rejected: %v", err)
	}
}
