package maintain

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"mrskyline/internal/skyline"
	"mrskyline/internal/tuple"
)

// sortedRows canonicalizes a tuple list for multiset comparison:
// lexicographic order over cloned rows.
func sortedRows(l tuple.List) tuple.List {
	out := l.Clone()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// checkAgainstNaive asserts m's published skyline equals the naive oracle
// over the expected resident rows, as multisets.
func checkAgainstNaive(t *testing.T, m *Maintained, resident tuple.List) {
	t.Helper()
	got := sortedRows(m.Snapshot().Skyline)
	want := sortedRows(skyline.Naive(resident))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("skyline mismatch:\n got  %v\n want %v\n residents %v", got, want, resident)
	}
}

func uniformRows(rng *rand.Rand, n, d int) tuple.List {
	out := make(tuple.List, n)
	for i := range out {
		row := make(tuple.Tuple, d)
		for k := range row {
			row[k] = math.Round(rng.Float64()*100) / 100
		}
		out[i] = row
	}
	return out
}

func TestSeedMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := uniformRows(rng, 300, 3)
		m, err := New(data.Clone(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstNaive(t, m, data)
		if m.Size() != len(data) {
			t.Fatalf("Size = %d, want %d", m.Size(), len(data))
		}
		if g := m.Generation(); g != 1 {
			t.Fatalf("seed generation = %d, want 1", g)
		}
	}
}

func TestInsertAndDeleteSemantics(t *testing.T) {
	m, err := New(tuple.List{{0.5, 0.5}, {0.2, 0.8}, {0.8, 0.2}}, Config{PPD: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A dominated insert leaves the skyline unchanged but is resident.
	if err := m.Insert(tuple.Tuple{0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Snapshot().Skyline); n != 3 {
		t.Fatalf("skyline size after dominated insert = %d, want 3", n)
	}
	if m.Size() != 4 {
		t.Fatalf("Size = %d, want 4", m.Size())
	}
	// A dominating insert shrinks the skyline to itself.
	if err := m.Insert(tuple.Tuple{0.01, 0.01}); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap.Skyline) != 1 || !snap.Skyline[0].Equal(tuple.Tuple{0.01, 0.01}) {
		t.Fatalf("skyline after dominating insert = %v, want [[0.01 0.01]]", snap.Skyline)
	}
	// Deleting it restores the previous skyline (3 points; the dominated
	// 0.9,0.9 stays dominated).
	found, err := m.Delete(tuple.Tuple{0.01, 0.01})
	if err != nil || !found {
		t.Fatalf("Delete = (%v, %v), want (true, nil)", found, err)
	}
	if n := len(m.Snapshot().Skyline); n != 3 {
		t.Fatalf("skyline size after delete-repair = %d, want 3", n)
	}
	// Deleting an absent tuple is a found=false no-op.
	found, err = m.Delete(tuple.Tuple{0.42, 0.42})
	if err != nil || found {
		t.Fatalf("Delete(absent) = (%v, %v), want (false, nil)", found, err)
	}
	checkAgainstNaive(t, m, tuple.List{{0.5, 0.5}, {0.2, 0.8}, {0.8, 0.2}, {0.9, 0.9}})
}

func TestDuplicateTuples(t *testing.T) {
	dup := tuple.Tuple{0.1, 0.9}
	m, err := New(tuple.List{dup.Clone(), dup.Clone(), {0.9, 0.1}, {0.5, 0.5}}, Config{PPD: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Equal tuples do not dominate each other (Definition 1): both copies
	// are in the skyline.
	if n := len(m.Snapshot().Skyline); n != 4 {
		t.Fatalf("skyline size with duplicates = %d, want 4", n)
	}
	// Deleting removes exactly one instance.
	if found, err := m.Delete(dup); err != nil || !found {
		t.Fatalf("Delete(dup) failed: %v %v", found, err)
	}
	count := 0
	for _, r := range m.Snapshot().Skyline {
		if r.Equal(dup) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate instances after one delete = %d, want 1", count)
	}
}

func TestBatchValidationIsAtomic(t *testing.T) {
	m, err := New(tuple.List{{0.5, 0.5}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen := m.Generation()
	// NaN row anywhere in the batch rejects the whole batch.
	_, err = m.Apply([]Delta{
		{Op: OpInsert, Row: tuple.Tuple{0.1, 0.1}},
		{Op: OpInsert, Row: tuple.Tuple{math.NaN(), 0.2}},
	})
	if err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN batch error = %v, want non-finite rejection", err)
	}
	// Ragged row likewise.
	if _, err := m.Apply([]Delta{{Op: OpInsert, Row: tuple.Tuple{0.1}}}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if m.Generation() != gen || m.Size() != 1 {
		t.Fatalf("rejected batch mutated state: gen %d→%d size %d", gen, m.Generation(), m.Size())
	}
}

func TestEmptySeedRequiresDim(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty seed without Dim accepted")
	}
	m, err := New(nil, Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.Gen != 1 || len(s.Skyline) != 0 {
		t.Fatalf("empty seed snapshot = gen %d, %d rows", s.Gen, len(s.Skyline))
	}
	if err := m.Insert(tuple.Tuple{0.3, 0.3}); err != nil {
		t.Fatal(err)
	}
	checkAgainstNaive(t, m, tuple.List{{0.3, 0.3}})
}

func TestConfigErrors(t *testing.T) {
	data := tuple.List{{0.1, 0.2}}
	cases := []struct {
		name string
		data tuple.List
		cfg  Config
	}{
		{"dim mismatch", data, Config{Dim: 3}},
		{"negative window", data, Config{WindowCap: -1}},
		{"seed exceeds window", tuple.List{{0.1, 0.2}, {0.3, 0.4}}, Config{WindowCap: 1}},
		{"lo/hi mismatch", data, Config{Lo: []float64{0}, Hi: []float64{1}}},
		{"nan seed", tuple.List{{math.NaN(), 0.2}}, Config{}},
		{"ragged seed", tuple.List{{0.1, 0.2}, {0.3}}, Config{}},
	}
	for _, c := range cases {
		if _, err := New(c.data, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSlidingWindow(t *testing.T) {
	const cap = 16
	m, err := New(nil, Config{Dim: 2, WindowCap: cap, Lo: []float64{0, 0}, Hi: []float64{1, 1}, PPD: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var stream tuple.List
	for i := 0; i < 100; i++ {
		row := tuple.Tuple{rng.Float64(), rng.Float64()}
		stream = append(stream, row)
		if err := m.Insert(row.Clone()); err != nil {
			t.Fatal(err)
		}
		// The resident set is the last cap rows of the stream.
		lo := 0
		if len(stream) > cap {
			lo = len(stream) - cap
		}
		checkAgainstNaive(t, m, stream[lo:])
	}
	if m.Size() != cap {
		t.Fatalf("Size = %d, want %d", m.Size(), cap)
	}
	st := m.Stats()
	if st.Evictions != 100-cap {
		t.Fatalf("Evictions = %d, want %d", st.Evictions, 100-cap)
	}
	// Explicit deletes are rejected in sliding-window mode.
	if _, err := m.Delete(tuple.Tuple{0.5, 0.5}); err == nil {
		t.Fatal("Delete accepted on a sliding window")
	}
}

func TestRowsRebuildIsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := uniformRows(rng, 200, 3)
	cfg := Config{PPD: 5, Lo: []float64{0, 0, 0}, Hi: []float64{1, 1, 1}}
	m, err := New(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var batch []Delta
		for j := 0; j < 8; j++ {
			batch = append(batch, Delta{Op: OpInsert, Row: uniformRows(rng, 1, 3)[0]})
		}
		rows := m.Rows()
		for j := 0; j < 5 && j < len(rows); j++ {
			batch = append(batch, Delta{Op: OpDelete, Row: rows[rng.Intn(len(rows))]})
		}
		if _, err := m.Apply(batch); err != nil {
			t.Fatal(err)
		}
		// A fresh build over the residents, on the same grid, publishes the
		// exact same skyline — same tuples, same order.
		fresh, err := New(m.Rows(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m.Snapshot().Skyline, fresh.Snapshot().Skyline) {
			t.Fatalf("batch %d: incremental and rebuilt skylines differ:\n inc   %v\n fresh %v",
				i, m.Snapshot().Skyline, fresh.Snapshot().Skyline)
		}
	}
}

func TestStatsAndContribReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := uniformRows(rng, 500, 2)
	m, err := New(data, Config{PPD: 8})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	if before.Size != 500 || before.Cells == 0 || before.Surviving == 0 {
		t.Fatalf("implausible seed stats: %+v", before)
	}
	// A single far-corner insert (worst value in every dimension) lands in
	// a dominated cell: publish must not recompute every contribution.
	if err := m.Insert(tuple.Tuple{0.99, 0.99}); err != nil {
		t.Fatal(err)
	}
	after := m.Stats()
	recomputed := after.ContribRecomputes - before.ContribRecomputes
	if recomputed > uint64(before.Surviving)/2 {
		t.Fatalf("corner insert recomputed %d contributions (surviving %d) — incremental reuse broken",
			recomputed, before.Surviving)
	}
	if after.Inserts != before.Inserts+1 {
		t.Fatalf("Inserts = %d, want %d", after.Inserts, before.Inserts+1)
	}
}

func TestDeltasInPrunedCells(t *testing.T) {
	// A near-origin point prunes almost the whole grid. Churn confined to
	// the pruned region must stay invisible to the skyline but tracked for
	// delete-repair.
	seed := tuple.List{{0.05, 0.05}, {0.7, 0.7}, {0.9, 0.3}, {0.3, 0.9}}
	m, err := New(seed.Clone(), Config{PPD: 8, Lo: []float64{0, 0}, Hi: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	resident := seed.Clone()
	for i := 0; i < 20; i++ {
		row := tuple.Tuple{0.6 + float64(i%4)*0.1, 0.6 + float64(i%5)*0.08}
		if err := m.Insert(row.Clone()); err != nil {
			t.Fatal(err)
		}
		resident = append(resident, row)
		checkAgainstNaive(t, m, resident)
	}
	// Delete the pruner: everything it suppressed must resurface without a
	// full recompute (their windows were maintained all along).
	if found, err := m.Delete(tuple.Tuple{0.05, 0.05}); err != nil || !found {
		t.Fatalf("Delete(pruner) = (%v, %v)", found, err)
	}
	resident = resident[1:]
	checkAgainstNaive(t, m, resident)
}

func TestOutOfDomainClamping(t *testing.T) {
	m, err := New(tuple.List{{0.5, 0.5}}, Config{Lo: []float64{0, 0}, Hi: []float64{1, 1}, PPD: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Rows outside the fixed domain clamp into boundary cells; pruning
	// degrades, correctness must not.
	resident := tuple.List{{0.5, 0.5}}
	for _, row := range []tuple.Tuple{{-1, -1}, {2, 2}, {-0.5, 3}, {0.2, 0.2}} {
		if err := m.Insert(row.Clone()); err != nil {
			t.Fatal(err)
		}
		resident = append(resident, row)
		checkAgainstNaive(t, m, resident)
	}
	if found, err := m.Delete(tuple.Tuple{-1, -1}); err != nil || !found {
		t.Fatalf("Delete(out-of-domain) = (%v, %v)", found, err)
	}
	var remaining tuple.List
	for _, r := range resident {
		if !r.Equal(tuple.Tuple{-1, -1}) {
			remaining = append(remaining, r)
		}
	}
	checkAgainstNaive(t, m, remaining)
}

func TestConcurrentReadersNeverBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := New(uniformRows(rng, 200, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Snapshot()
				if s == nil {
					t.Error("Snapshot returned nil")
					return
				}
				if s.Gen < lastGen {
					t.Errorf("generation went backwards: %d after %d", s.Gen, lastGen)
					return
				}
				lastGen = s.Gen
				// Read every row: the race detector verifies immutability
				// against concurrent writers.
				for _, row := range s.Skyline {
					_ = row[0]
				}
			}
		}()
	}
	wrng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		batch := []Delta{{Op: OpInsert, Row: uniformRows(wrng, 1, 3)[0]}}
		if rows := m.Rows(); len(rows) > 0 && i%2 == 1 {
			batch = append(batch, Delta{Op: OpDelete, Row: rows[wrng.Intn(len(rows))]})
		}
		if _, err := m.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Fatalf("Op strings = %q, %q", OpInsert, OpDelete)
	}
	if s := Op(9).String(); s != "Op(9)" {
		t.Fatalf("unknown op string = %q", s)
	}
}
