// Package maintain keeps a skyline incrementally up to date under a
// stream of inserts and deletes, instead of recomputing it from scratch
// per query the way the MapReduce pipeline does.
//
// The structure is the paper's grid partitioning kept resident: every
// tuple lives in its grid cell (Section 3), each non-empty cell holds the
// local skyline of its members on the columnar window kernel
// (internal/skyline/window), and an occupancy bitstring plus the pruning
// sweep of Equation 2 marks the surviving cells — exactly the state the
// mappers and reducers of MR-GPSRS/GPMRS rebuild on every job. Keeping it
// resident localizes the effect of a delta:
//
//   - Insert locates the target cell, dominance-tests the tuple against
//     that cell's local skyline only (Algorithm 4), and sets the cell's
//     occupancy bit. No other cell's window is touched.
//   - Delete removes the tuple from its cell; only when the tuple was part
//     of the cell's local skyline is that one cell's window rebuilt from
//     its members. Cells the deleted cell's bitstring bit had pruned
//     reappear through the survivor re-derivation, with their local
//     skylines already maintained — no recompute outside the affected
//     cell.
//
// The global skyline is assembled from per-cell contributions: a
// surviving cell's contribution is its local skyline filtered by the
// windows of the surviving cells in its anti-dominating region
// (Algorithm 5), and a contribution is only recomputed when the cell — or
// a cell in its ADR — changed since the last batch. Local skylines are
// maintained for pruned cells too, which is what makes delete-repair
// cheap: un-pruning is a bitstring flip, not a recompute.
//
// Writers serialize on an internal mutex; every mutation batch publishes
// an immutable snapshot through an atomic pointer with a monotonically
// increasing generation, so concurrent readers get a consistent skyline
// without ever blocking (or being blocked by) writers.
//
// The grid's domain and granularity are fixed at construction. Deltas
// outside the seed domain clamp into boundary cells (see grid.Locate),
// which degrades pruning quality but never correctness.
package maintain

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mrskyline/internal/bitstring"
	"mrskyline/internal/grid"
	"mrskyline/internal/skyline/window"
	"mrskyline/internal/tuple"
)

// Config shapes a Maintained skyline. The zero value derives everything
// from the seed data.
type Config struct {
	// Dim fixes the dimensionality. Required when the seed data is empty;
	// otherwise it must match the data (0 derives it from the data).
	Dim int
	// PPD fixes the grid's partitions-per-dimension. 0 chooses it with the
	// paper's Equation 4 from the seed cardinality (minimum 2). The grid is
	// fixed for the lifetime of the structure, so a workload expected to
	// grow far beyond its seed should set PPD for the target size.
	PPD int
	// Lo and Hi fix the grid domain ([lo, hi) per dimension). Nil derives
	// them from the seed data (the unit box when the seed is empty).
	// Out-of-domain deltas clamp into boundary cells.
	Lo, Hi []float64
	// WindowCap, when positive, turns the maintained set into a sliding
	// window: once Size reaches WindowCap, each insert first evicts the
	// oldest resident tuple. Sliding windows are insert-only — explicit
	// deletes are rejected, because eviction order is the only delete.
	WindowCap int
	// SeedGen, when positive, is the generation assigned to the seed
	// publish (0 means 1, the fresh-build default). Durable recovery uses
	// it to resume a handle's generation sequence from a checkpoint: a
	// snapshot taken at generation G reseeds with SeedGen G, so replayed
	// delta batches continue at G+1 exactly as they did before the crash.
	SeedGen uint64
}

// Op is a delta operation.
type Op uint8

// The delta operations.
const (
	OpInsert Op = iota
	OpDelete
)

// String implements fmt.Stringer for Op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Delta is one insert or delete.
type Delta struct {
	Op  Op
	Row tuple.Tuple
}

// ApplyResult summarizes one delta batch.
type ApplyResult struct {
	// Inserted and Deleted count applied operations; Missing counts
	// deletes whose tuple was not resident (they are no-ops, not errors).
	// Evicted counts sliding-window evictions triggered by inserts.
	Inserted, Deleted, Missing, Evicted int
	// Gen and SkylineSize describe the snapshot published after the batch.
	Gen         uint64
	SkylineSize int
}

// Snapshot is one published skyline state. It is immutable: readers must
// not modify the slice or its tuples, and successive snapshots share
// tuple storage.
type Snapshot struct {
	// Gen increases by one per published mutation batch.
	Gen uint64
	// Skyline holds the skyline tuples in deterministic order: ascending
	// grid-cell index, window order within a cell. It is byte-identical to
	// what a full rebuild over the current residents produces.
	Skyline tuple.List
}

// Stats is a point-in-time view of the maintainer's work counters.
type Stats struct {
	// Inserts, Deletes, DeleteMisses and Evictions count applied deltas.
	Inserts, Deletes, DeleteMisses, Evictions uint64
	// CellRebuilds counts delete-repairs: one cell's local skyline rebuilt
	// from its members because the deleted tuple was part of it.
	CellRebuilds uint64
	// ContribRecomputes counts per-cell contribution refreshes during
	// publishes — the incremental unit of global-skyline work.
	ContribRecomputes uint64
	// DominanceTests counts tuple-pair classifications across all
	// maintenance work (the same unit the batch pipeline reports).
	DominanceTests int64
	// Size, Cells and Surviving describe the resident state: tuples held,
	// non-empty grid cells, and cells surviving bitstring pruning.
	Size, Cells, Surviving int
	// Gen and SkylineSize describe the latest published snapshot.
	Gen         uint64
	SkylineSize int
}

// member is one resident tuple: its value plus a global arrival sequence
// number (the sliding-window eviction order).
type member struct {
	t   tuple.Tuple
	seq uint64
}

// cell is one non-empty grid partition: every resident member in arrival
// order, plus the local skyline of those members (the window a mapper of
// Algorithm 3 would hold for this partition).
type cell struct {
	members []member
	sky     *window.Window
}

// rebuild reconstructs the cell's local skyline from its members in
// arrival order — exactly the BNL insertion a fresh build performs, so
// incremental and rebuilt windows are indistinguishable.
func (c *cell) rebuild(cnt *window.Count) {
	c.sky.Reset()
	for _, mb := range c.members {
		c.sky.Insert(mb.t, cnt)
	}
}

// fifoRef locates one resident tuple for sliding-window eviction.
type fifoRef struct {
	cellIdx int
	seq     uint64
}

// Maintained is an incrementally maintained skyline. Create one with New.
// All methods are safe for concurrent use; mutations serialize on an
// internal mutex while Snapshot stays lock-free.
type Maintained struct {
	g   *grid.Grid
	cap int // sliding-window capacity (0 = unbounded)

	mu     sync.Mutex
	cells  map[int]*cell
	occ    *bitstring.Bitstring // occupancy: bit i ⟺ cell i non-empty
	pruned *bitstring.Bitstring // survivors as of the last publish
	// contrib caches, per surviving cell, its slice of the global skyline:
	// the cell's local skyline filtered by surviving ADR windows.
	contrib map[int]tuple.List
	// dirty marks cells whose local skyline (or existence) changed since
	// the last publish.
	dirty map[int]struct{}
	seq   uint64
	fifo  []fifoRef // arrival order; WindowCap > 0 only
	head  int       // fifo's logical start (popped prefix)
	size  int
	gen   uint64
	cnt   window.Count
	stats Stats

	snap atomic.Pointer[Snapshot]
}

// New builds a maintained skyline seeded with data, which the structure
// takes ownership of (callers must not modify the rows afterwards; pass a
// copy to retain them). Seed rows are validated like every other entry
// point: ragged rows and non-finite values are errors.
func New(data tuple.List, cfg Config) (*Maintained, error) {
	if err := data.Validate(); err != nil {
		return nil, fmt.Errorf("maintain: %w", err)
	}
	d := cfg.Dim
	if len(data) > 0 {
		if d != 0 && d != data.Dim() {
			return nil, fmt.Errorf("maintain: Config.Dim %d does not match seed dimensionality %d", d, data.Dim())
		}
		d = data.Dim()
	}
	if d <= 0 {
		return nil, fmt.Errorf("maintain: dimensionality required: set Config.Dim or seed with data")
	}
	if cfg.WindowCap < 0 {
		return nil, fmt.Errorf("maintain: WindowCap must be ≥ 0, got %d", cfg.WindowCap)
	}
	if cfg.WindowCap > 0 && len(data) > cfg.WindowCap {
		return nil, fmt.Errorf("maintain: seed of %d rows exceeds WindowCap %d", len(data), cfg.WindowCap)
	}
	lo, hi, err := domain(d, cfg, data)
	if err != nil {
		return nil, err
	}
	ppd := cfg.PPD
	if ppd == 0 {
		ppd = grid.PPDForTPP(len(data), d, 0, grid.MaxPartitions)
	}
	g, err := grid.NewWithBounds(d, ppd, lo, hi)
	if err != nil {
		return nil, fmt.Errorf("maintain: %w", err)
	}
	m := &Maintained{
		g:       g,
		cap:     cfg.WindowCap,
		cells:   make(map[int]*cell),
		occ:     bitstring.New(g.NumPartitions()),
		pruned:  bitstring.New(g.NumPartitions()),
		contrib: make(map[int]tuple.List),
		dirty:   make(map[int]struct{}),
	}
	if cfg.SeedGen > 0 {
		m.gen = cfg.SeedGen - 1
	}
	for _, t := range data {
		m.insertLocked(t)
	}
	m.publishLocked()
	return m, nil
}

// domain resolves the grid bounds: explicit config, else the seed data's
// bounding box (widened on constant dimensions), else the unit box.
func domain(d int, cfg Config, data tuple.List) (lo, hi tuple.Tuple, err error) {
	if cfg.Lo != nil || cfg.Hi != nil {
		if len(cfg.Lo) != d || len(cfg.Hi) != d {
			return nil, nil, fmt.Errorf("maintain: Lo/Hi dimensionality %d/%d does not match d=%d", len(cfg.Lo), len(cfg.Hi), d)
		}
		return tuple.Tuple(cfg.Lo).Clone(), tuple.Tuple(cfg.Hi).Clone(), nil
	}
	lo = make(tuple.Tuple, d)
	hi = make(tuple.Tuple, d)
	if len(data) == 0 {
		for k := range hi {
			hi[k] = 1
		}
		return lo, hi, nil
	}
	copy(lo, data[0])
	copy(hi, data[0])
	for _, t := range data[1:] {
		lo.MinWith(t)
		hi.MaxWith(t)
	}
	for k := 0; k < d; k++ {
		if hi[k] <= lo[k] {
			hi[k] = lo[k] + 1
		}
	}
	return lo, hi, nil
}

// Dim returns the dimensionality.
func (m *Maintained) Dim() int { return m.g.Dim() }

// PPD returns the grid's partitions-per-dimension.
func (m *Maintained) PPD() int { return m.g.PPD() }

// Size returns the number of resident tuples.
func (m *Maintained) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.size
}

// Generation returns the latest published generation.
func (m *Maintained) Generation() uint64 { return m.Snapshot().Gen }

// Snapshot returns the latest published skyline. It never blocks and
// never returns nil; the result is immutable and must not be modified.
func (m *Maintained) Snapshot() *Snapshot { return m.snap.Load() }

// Rows returns a copy of every resident tuple in deterministic order
// (ascending cell index, arrival order within a cell) — the exact multiset
// a full recompute would run over.
func (m *Maintained) Rows() tuple.List {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(tuple.List, 0, m.size)
	for _, idx := range m.sortedCells() {
		for _, mb := range m.cells[idx].members {
			out = append(out, mb.t.Clone())
		}
	}
	return out
}

// ArrivalRows returns a copy of every resident tuple in global arrival
// order (the sequence inserts happened in, deletions excised). Reseeding a
// fresh Maintained with this list reproduces the current state exactly:
// per-cell member order, every cell window, the sliding-window eviction
// order, and therefore the published skyline bytes — which is what makes
// it the canonical checkpoint serialization for durable recovery.
func (m *Maintained) ArrivalRows() tuple.List {
	m.mu.Lock()
	defer m.mu.Unlock()
	type seqRow struct {
		seq uint64
		t   tuple.Tuple
	}
	rows := make([]seqRow, 0, m.size)
	for _, c := range m.cells {
		for _, mb := range c.members {
			rows = append(rows, seqRow{seq: mb.seq, t: mb.t})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	out := make(tuple.List, len(rows))
	for i, r := range rows {
		out[i] = r.t.Clone()
	}
	return out
}

// Bounds returns copies of the grid domain ([lo, hi) per dimension). A
// checkpoint persists them so recovery rebuilds the identical grid instead
// of re-deriving a different domain from the surviving rows.
func (m *Maintained) Bounds() (lo, hi tuple.Tuple) { return m.g.Lo(), m.g.Hi() }

// WindowCap returns the sliding-window capacity (0 = unbounded).
func (m *Maintained) WindowCap() int { return m.cap }

// Stats returns the maintainer's work counters.
func (m *Maintained) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.DominanceTests = m.cnt.DominanceTests
	st.Size = m.size
	st.Cells = len(m.cells)
	st.Surviving = m.pruned.Count()
	st.Gen = m.gen
	if s := m.snap.Load(); s != nil {
		st.SkylineSize = len(s.Skyline)
	}
	return st
}

// checkRow validates one delta row: the grid's dimensionality and only
// finite values (a NaN row is rejected on insert exactly as Compute
// rejects it — NaN breaks the transitivity the pruning relies on).
func (m *Maintained) checkRow(t tuple.Tuple) error {
	if len(t) != m.g.Dim() {
		return fmt.Errorf("maintain: row dimensionality %d does not match d=%d", len(t), m.g.Dim())
	}
	if !t.Valid() {
		return fmt.Errorf("maintain: non-finite value in row %v", t)
	}
	return nil
}

// Insert adds one tuple (taking ownership of it) and publishes a new
// snapshot. In sliding-window mode it may evict the oldest resident
// tuple first.
func (m *Maintained) Insert(t tuple.Tuple) error {
	_, err := m.Apply([]Delta{{Op: OpInsert, Row: t}})
	return err
}

// Delete removes one resident tuple equal to row and publishes a new
// snapshot. It reports whether a matching tuple was found (deleting an
// absent tuple is a no-op). Sliding windows reject explicit deletes.
func (m *Maintained) Delete(row tuple.Tuple) (bool, error) {
	res, err := m.Apply([]Delta{{Op: OpDelete, Row: row}})
	if err != nil {
		return false, err
	}
	return res.Deleted > 0, nil
}

// CheckBatch validates a delta batch without applying it: row
// dimensionality, finite values, known ops, and the sliding-window
// insert-only rule. It is exactly Apply's up-front validation, exposed so
// a write-ahead log can refuse a doomed batch before appending it.
func (m *Maintained) CheckBatch(deltas []Delta) error {
	for i, d := range deltas {
		if err := m.checkRow(d.Row); err != nil {
			return fmt.Errorf("%w (delta %d)", err, i)
		}
		switch d.Op {
		case OpInsert:
		case OpDelete:
			if m.cap > 0 {
				return fmt.Errorf("maintain: delete rejected (delta %d): sliding windows are insert-only", i)
			}
		default:
			return fmt.Errorf("maintain: unknown op %v (delta %d)", d.Op, i)
		}
	}
	return nil
}

// Apply applies a batch of deltas atomically — the whole batch is
// validated first and either every operation applies or none does — and
// publishes exactly one new snapshot. Readers see either the previous
// snapshot or the post-batch one, never an intermediate state.
func (m *Maintained) Apply(deltas []Delta) (ApplyResult, error) {
	if err := m.CheckBatch(deltas); err != nil {
		return ApplyResult{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var res ApplyResult
	for _, d := range deltas {
		switch d.Op {
		case OpInsert:
			if m.cap > 0 && m.size >= m.cap {
				m.evictOldestLocked()
				res.Evicted++
			}
			m.insertLocked(d.Row)
			res.Inserted++
		case OpDelete:
			if m.deleteLocked(d.Row) {
				res.Deleted++
			} else {
				res.Missing++
			}
		}
	}
	m.stats.Inserts += uint64(res.Inserted)
	m.stats.Deletes += uint64(res.Deleted)
	m.stats.DeleteMisses += uint64(res.Missing)
	m.stats.Evictions += uint64(res.Evicted)
	m.publishLocked()
	res.Gen = m.gen
	res.SkylineSize = len(m.snap.Load().Skyline)
	return res, nil
}

// insertLocked adds t to its cell: append to members, fold into the
// cell's local skyline (Algorithm 4), set the occupancy bit.
func (m *Maintained) insertLocked(t tuple.Tuple) {
	j := m.g.Locate(t)
	c := m.cells[j]
	if c == nil {
		c = &cell{sky: window.New(m.g.Dim())}
		m.cells[j] = c
		m.occ.Set(j)
		m.dirty[j] = struct{}{}
	}
	m.seq++
	c.members = append(c.members, member{t: t, seq: m.seq})
	m.size++
	if m.cap > 0 {
		m.fifo = append(m.fifo, fifoRef{cellIdx: j, seq: m.seq})
	}
	if c.sky.Insert(t, &m.cnt) {
		// The window changed (t entered, possibly evicting): the cell's
		// contribution and those of cells it prunes/filters are stale.
		m.dirty[j] = struct{}{}
	}
}

// deleteLocked removes the first resident member equal to row (arrival
// order), repairing the cell's local skyline only when the removed tuple
// was part of it. Reports whether a match was found.
func (m *Maintained) deleteLocked(row tuple.Tuple) bool {
	j := m.g.Locate(row)
	c := m.cells[j]
	if c == nil {
		return false
	}
	at := -1
	for i, mb := range c.members {
		if mb.t.Equal(row) {
			at = i
			break
		}
	}
	if at < 0 {
		return false
	}
	removed := c.members[at].t
	m.removeMemberLocked(j, c, at, removed)
	return true
}

// removeMemberLocked excises members[at] from cell j and repairs state:
// the cell's window is rebuilt only if the removed tuple was in it, and
// an emptied cell clears its occupancy bit — the cells its bitstring bit
// had pruned resurface at the next publish through PruneInto, their local
// skylines already current.
func (m *Maintained) removeMemberLocked(j int, c *cell, at int, removed tuple.Tuple) {
	c.members = append(c.members[:at], c.members[at+1:]...)
	m.size--
	if len(c.members) == 0 {
		delete(m.cells, j)
		m.occ.Clear(j)
		m.dirty[j] = struct{}{}
		return
	}
	if c.sky.Contains(removed) {
		c.rebuild(&m.cnt)
		m.stats.CellRebuilds++
		m.dirty[j] = struct{}{}
	}
}

// evictOldestLocked removes the oldest resident tuple (sliding-window
// mode). The fifo head always names a live member: eviction is the only
// removal path when WindowCap > 0.
func (m *Maintained) evictOldestLocked() {
	ref := m.fifo[m.head]
	m.head++
	if m.head > len(m.fifo)/2 && m.head > 64 {
		m.fifo = append(m.fifo[:0], m.fifo[m.head:]...)
		m.head = 0
	}
	c := m.cells[ref.cellIdx]
	for i, mb := range c.members {
		if mb.seq == ref.seq {
			m.removeMemberLocked(ref.cellIdx, c, i, mb.t)
			return
		}
	}
	panic(fmt.Sprintf("maintain: fifo references missing member seq %d in cell %d", ref.seq, ref.cellIdx))
}

// sortedCells returns the non-empty cell indexes ascending.
func (m *Maintained) sortedCells() []int {
	idx := make([]int, 0, len(m.cells))
	for j := range m.cells {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	return idx
}

// publishLocked re-derives survivors, refreshes the stale per-cell
// contributions, and publishes the next snapshot.
//
// A contribution is stale when its cell changed (window content, creation,
// removal, or survival flip) or when any changed cell lies in its ADR —
// changed cells can start or stop filtering it. Everything else is reused
// from the previous publish, which is what keeps a batch touching one
// cell from paying for the whole grid.
func (m *Maintained) publishLocked() {
	newPruned := bitstring.New(m.g.NumPartitions())
	m.g.PruneInto(newPruned, m.occ)

	// changed = dirty cells ∪ cells whose survival bit flipped. A flip can
	// only happen at a cell that is non-empty now (bit may have set) or was
	// removed this batch (already in dirty).
	changed := make([]int, 0, len(m.dirty))
	seen := make(map[int]struct{}, len(m.dirty))
	for j := range m.dirty {
		changed = append(changed, j)
		seen[j] = struct{}{}
	}
	for j := range m.cells {
		if _, dup := seen[j]; !dup && newPruned.Get(j) != m.pruned.Get(j) {
			changed = append(changed, j)
			seen[j] = struct{}{}
		}
	}
	sort.Ints(changed)

	d := m.g.Dim()
	changedCoords := make([][]int, len(changed))
	for i, j := range changed {
		changedCoords[i] = m.g.Coords(j, make([]int, d))
	}

	// Drop contributions of cells that no longer survive.
	for j := range m.contrib {
		if j >= 0 && (!newPruned.Get(j) || m.cells[j] == nil) {
			delete(m.contrib, j)
		}
	}

	active := m.sortedCells()
	coords := make([]int, d)
	for _, k := range active {
		if !newPruned.Get(k) {
			continue
		}
		_, cached := m.contrib[k]
		stale := !cached
		if !stale {
			if _, ok := seen[k]; ok {
				stale = true
			}
		}
		if !stale {
			m.g.Coords(k, coords)
			for _, cc := range changedCoords {
				if inWeakADR(cc, coords) {
					stale = true
					break
				}
			}
		}
		if stale {
			m.contrib[k] = m.contribution(k, active, newPruned)
			m.stats.ContribRecomputes++
		}
	}

	total := 0
	for _, k := range active {
		total += len(m.contrib[k])
	}
	sky := make(tuple.List, 0, total)
	for _, k := range active {
		sky = append(sky, m.contrib[k]...)
	}

	m.pruned = newPruned
	for j := range m.dirty {
		delete(m.dirty, j)
	}
	m.gen++
	m.snap.Store(&Snapshot{Gen: m.gen, Skyline: sky})
}

// inWeakADR reports whether cell coordinates c are ≤ k on every dimension
// — c ∈ ADR(k) ∪ {k}, the condition for a change at c to affect k's
// contribution.
func inWeakADR(c, k []int) bool {
	for i := range c {
		if c[i] > k[i] {
			return false
		}
	}
	return true
}

// contribution computes surviving cell k's slice of the global skyline:
// its local skyline filtered by the windows of every surviving cell in
// its ADR (Algorithm 5 restricted to k). active must be ascending.
func (m *Maintained) contribution(k int, active []int, pruned *bitstring.Bitstring) tuple.List {
	ck := m.cells[k]
	var filters []*window.Window
	for _, j := range active {
		if j != k && pruned.Get(j) && m.g.InADR(j, k) {
			filters = append(filters, m.cells[j].sky)
		}
	}
	rows := ck.sky.Rows()
	out := make(tuple.List, 0, len(rows))
next:
	for _, t := range rows {
		for _, f := range filters {
			if f.Dominated(t, &m.cnt) {
				continue next
			}
		}
		out = append(out, t)
	}
	return out
}
