package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event. The exporter emits only
// complete ("X") duration events and thread-name ("M") metadata events;
// ts and dur are microseconds, as the format requires.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func usec(d int64) float64 { return float64(d) / 1e3 }

// WriteChromeTrace exports the tracer's spans as Chrome trace-event JSON
// loadable in chrome://tracing or ui.perfetto.dev. Tracks become
// threads of one process: a thread_name metadata event per track, then
// complete X events sorted by track and start time. Output is
// deterministic for a deterministic span set. A nil tracer writes an
// empty trace.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := t.Spans()
	tracks := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			tracks = append(tracks, s.Track)
		}
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	events := make([]chromeEvent, 0, len(tracks)+len(spans))
	for i, track := range tracks {
		tid[track] = i + 1
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]string{"name": track},
		})
	}
	for _, s := range spans {
		dur := usec(int64(s.End - s.Start))
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: usec(int64(s.Start)), Dur: &dur,
			Pid: 1, Tid: tid[s.Track],
		}
		if len(s.Args) > 0 {
			ev.Args = make(map[string]string, len(s.Args))
			for _, a := range s.Args {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	// Spans() is sorted by track name; tids were assigned in sorted track
	// order, so X events are already grouped by tid ascending and sorted
	// by ts within each tid.
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events})
}

// ValidateChromeTraceJSON checks that data is a trace this package could
// have produced and that it is well-formed for a timeline viewer:
//
//   - top level is {"traceEvents": [...]} holding only complete "X"
//     events and "M" metadata events;
//   - every X event has a name, non-negative ts and dur, and a tid that
//     carries a thread_name metadata event;
//   - per tid, X events appear in non-decreasing ts order (monotonic
//     timestamps per track);
//   - per tid, events nest or are disjoint — no partial overlap.
//
// Nesting is checked with a half-nanosecond tolerance: span ends are
// reconstructed as ts + dur in float microseconds, so two spans ending
// at the same nanosecond can differ by an ulp after the µs conversion,
// while a genuine overlap is at least a full nanosecond (0.001 µs).
//
// It returns nil for a valid trace and a descriptive error otherwise.
func ValidateChromeTraceJSON(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("not valid trace JSON: %w", err)
	}
	named := make(map[int]bool)
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name != "thread_name" {
				return fmt.Errorf("event %d: unexpected metadata event %q", i, ev.Name)
			}
			if ev.Args["name"] == "" {
				return fmt.Errorf("event %d: thread_name metadata without a name arg", i)
			}
			named[ev.Tid] = true
		}
	}
	type open struct{ end float64 }
	stacks := make(map[int][]open)
	lastTs := make(map[int]float64)
	sawX := make(map[int]bool)
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return fmt.Errorf("event %d (%q): phase %q; want complete X or metadata M", i, ev.Name, ev.Ph)
		}
		if ev.Name == "" {
			return fmt.Errorf("event %d: X event without a name", i)
		}
		if ev.Dur == nil {
			return fmt.Errorf("event %d (%q): X event without dur", i, ev.Name)
		}
		if ev.Ts < 0 || *ev.Dur < 0 {
			return fmt.Errorf("event %d (%q): negative ts or dur", i, ev.Name)
		}
		if !named[ev.Tid] {
			return fmt.Errorf("event %d (%q): tid %d has no thread_name metadata", i, ev.Name, ev.Tid)
		}
		if sawX[ev.Tid] && ev.Ts < lastTs[ev.Tid] {
			return fmt.Errorf("event %d (%q): ts %v on tid %d goes backwards (previous %v)", i, ev.Name, ev.Ts, ev.Tid, lastTs[ev.Tid])
		}
		sawX[ev.Tid] = true
		lastTs[ev.Tid] = ev.Ts
		const halfNs = 0.0005 // µs; absorbs float rounding, below real overlap
		end := ev.Ts + *ev.Dur
		stack := stacks[ev.Tid]
		for len(stack) > 0 && stack[len(stack)-1].end <= ev.Ts+halfNs {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && end > stack[len(stack)-1].end+halfNs {
			return fmt.Errorf("event %d (%q): [%v,%v) on tid %d partially overlaps an enclosing span ending at %v",
				i, ev.Name, ev.Ts, end, ev.Tid, stack[len(stack)-1].end)
		}
		stacks[ev.Tid] = append(stack, open{end: end})
	}
	return nil
}
