package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now != 0")
	}
	ref := tr.Start("driver", "x", CatJob)
	ref.End()
	ref.EndWith(Arg{Key: "k", Value: "v"})
	tr.Record(Span{Track: "driver", Name: "y"})
	tr.AdvanceVirtualBase(time.Hour)
	if tr.VirtualBase() != 0 {
		t.Fatal("nil tracer VirtualBase != 0")
	}
	tr.ResetMetrics()
	if tr.Metrics() != nil {
		t.Fatal("nil tracer Metrics != nil")
	}
	tr.Metrics().Count("c", 1)
	tr.Metrics().Observe("h", 1)
	tr.Metrics().Gauge("g", 1)
	if got := tr.Metrics().Snapshot(); len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer Spans != nil")
	}
	if FlameSummary(tr) != "" {
		t.Fatal("nil tracer FlameSummary not empty")
	}
}

func TestWallSpans(t *testing.T) {
	tr := New()
	ref := tr.Start(DriverTrack, "outer", CatJob, Arg{Key: "job", Value: "wc"})
	inner := tr.Start(DriverTrack, "inner", CatPhase)
	time.Sleep(time.Millisecond)
	inner.End()
	ref.EndWith(Arg{Key: "state", Value: "ok"})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted: outer first (starts earlier, and at equal starts the longer
	// span wins).
	outer, in := spans[0], spans[1]
	if outer.Name != "outer" || in.Name != "inner" {
		t.Fatalf("order: %q, %q", outer.Name, in.Name)
	}
	if in.Start < outer.Start || in.End > outer.End {
		t.Fatalf("inner [%v,%v) not nested in outer [%v,%v)", in.Start, in.End, outer.Start, outer.End)
	}
	if in.End-in.Start < time.Millisecond {
		t.Fatalf("inner too short: %v", in.End-in.Start)
	}
	if len(outer.Args) != 2 || outer.Args[0].Key != "job" || outer.Args[1].Key != "state" {
		t.Fatalf("outer args: %+v", outer.Args)
	}
}

func TestRecordClampsBackwardsSpan(t *testing.T) {
	tr := New()
	tr.Record(Span{Track: "driver", Name: "x", Start: 5 * time.Second, End: 3 * time.Second})
	s := tr.Spans()[0]
	if s.End != s.Start {
		t.Fatalf("backwards span not clamped: [%v,%v)", s.Start, s.End)
	}
}

func TestVirtualBase(t *testing.T) {
	tr := New()
	if tr.VirtualBase() != 0 {
		t.Fatal("fresh tracer has nonzero virtual base")
	}
	tr.AdvanceVirtualBase(10 * time.Second)
	tr.AdvanceVirtualBase(4 * time.Second) // smaller: ignored
	if got := tr.VirtualBase(); got != 10*time.Second {
		t.Fatalf("virtual base = %v, want 10s", got)
	}
}

func TestSpansSortedByTrackThenStart(t *testing.T) {
	tr := New()
	tr.Record(Span{Track: "node1/s0", Name: "b", Start: 2, End: 3})
	tr.Record(Span{Track: "driver", Name: "a", Start: 5, End: 9})
	tr.Record(Span{Track: "node1/s0", Name: "c", Start: 1, End: 4})
	got := tr.Spans()
	want := []string{"a", "c", "b"}
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("span %d = %q, want %q (full: %+v)", i, s.Name, want[i], got)
		}
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ref := tr.Start("t", "s", CatTask)
				tr.Metrics().Count("n", 1)
				tr.Metrics().Observe("h", int64(i))
				ref.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
	snap := tr.Metrics().Snapshot()
	if snap.Counters[0].Value != 800 {
		t.Fatalf("counter = %d, want 800", snap.Counters[0].Value)
	}
	if snap.Histograms[0].Count != 800 {
		t.Fatalf("histogram count = %d, want 800", snap.Histograms[0].Count)
	}
}

func TestResetMetricsKeepsSpans(t *testing.T) {
	tr := New()
	tr.Metrics().Count("c", 7)
	tr.Record(Span{Track: "driver", Name: "x", Start: 0, End: 1})
	tr.ResetMetrics()
	if got := tr.Metrics().Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("counters survived reset: %+v", got)
	}
	if len(tr.Spans()) != 1 {
		t.Fatal("spans lost on metrics reset")
	}
}
