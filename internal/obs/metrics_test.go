package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotSortedAndExact(t *testing.T) {
	r := NewRegistry()
	r.Count("z.last", 2)
	r.Count("a.first", 1)
	r.Count("a.first", 4)
	r.Gauge("g.x", 9)
	r.Gauge("g.x", 3) // latest wins
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[0].Value != 5 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Counters[1].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 3 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
}

func TestHistogramSummary(t *testing.T) {
	r := NewRegistry()
	for _, v := range []int64{1, 2, 3, 4, 100, -5} {
		r.Observe("h", v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.Count != 6 || h.Sum != 110 || h.Min != 0 || h.Max != 100 {
		t.Fatalf("summary: %+v", h)
	}
	if h.Mean != 110/6 {
		t.Fatalf("mean = %d", h.Mean)
	}
	// p50 is a bucket upper bound: the true median is 2–3, so the bound
	// must sit in [2, 4) scaled by the 2x bucket width — i.e. ≤ 7 and ≥ 2.
	if h.P50 < 2 || h.P50 > 7 {
		t.Fatalf("p50 = %d out of log-bucket range", h.P50)
	}
	// p95 lands in the top sample's bucket, clamped to max.
	if h.P95 != 100 {
		t.Fatalf("p95 = %d, want clamped max 100", h.P95)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	r := NewRegistry()
	r.Observe("h", 42)
	h := r.Snapshot().Histograms[0]
	if h.Min != 42 || h.Max != 42 || h.P50 != 42 || h.P95 != 42 || h.Mean != 42 {
		t.Fatalf("single-sample summary: %+v", h)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		// Insertion order differs between the two builds; output must not.
		r.Count("b", 1)
		r.Count("a", 2)
		r.Observe("lat", 10)
		r.Observe("lat", 20)
		r.Gauge("g", 5)
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	build2 := func() []byte {
		r := NewRegistry()
		r.Gauge("g", 5)
		r.Observe("lat", 10)
		r.Count("a", 2)
		r.Count("b", 1)
		r.Observe("lat", 20)
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := build(), build2(); string(a) != string(b) {
		t.Fatalf("snapshot JSON depends on insertion order:\n%s\n%s", a, b)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Count("c", 1)
	r.Gauge("g", 2)
	r.Observe("h", 3)
	out := r.Snapshot().String()
	for _, want := range []string{"counter", "gauge", "hist", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot string missing %q:\n%s", want, out)
		}
	}
}

func TestCounterDirectLookup(t *testing.T) {
	r := NewRegistry()
	if got := r.Counter("absent"); got != 0 {
		t.Fatalf("Counter(absent) = %d, want 0", got)
	}
	r.Count("mr.queue.admitted", 3)
	r.Count("mr.queue.admitted", 4)
	r.Count("other", 1)
	if got := r.Counter("mr.queue.admitted"); got != 7 {
		t.Fatalf("Counter = %d, want 7", got)
	}
	// Agrees with the full snapshot.
	for _, c := range r.Snapshot().Counters {
		if c.Name == "mr.queue.admitted" && c.Value != r.Counter(c.Name) {
			t.Fatalf("Counter %d != Snapshot %d", r.Counter(c.Name), c.Value)
		}
	}
	// Nil registry: disabled, returns zero.
	var nilReg *Registry
	if got := nilReg.Counter("anything"); got != 0 {
		t.Fatalf("nil Counter = %d, want 0", got)
	}
}
