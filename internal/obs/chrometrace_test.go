package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTracer() *Tracer {
	tr := New()
	tr.Record(Span{Track: "driver", Name: "job:wc", Cat: CatJob, Start: 0, End: 100 * time.Millisecond,
		Args: []Arg{{Key: "mappers", Value: "4"}}})
	tr.Record(Span{Track: "driver", Name: "map", Cat: CatPhase, Start: 0, End: 60 * time.Millisecond})
	tr.Record(Span{Track: "driver", Name: "reduce", Cat: CatPhase, Start: 70 * time.Millisecond, End: 100 * time.Millisecond})
	tr.Record(Span{Track: "node0/s0", Name: "map[0]#0", Cat: CatTask, Start: 5 * time.Millisecond, End: 30 * time.Millisecond})
	tr.Record(Span{Track: "node0/s0", Name: "map[1]#0", Cat: CatTask, Start: 31 * time.Millisecond, End: 55 * time.Millisecond})
	return tr
}

func TestWriteChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleTracer()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("exported trace failed validation: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"thread_name"`, `"node0/s0"`, `"driver"`, `"ph": "X"`, `"mappers": "4"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleTracer()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleTracer()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical span sets exported different bytes")
	}
}

func TestWriteChromeTraceNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", `nope`, "not valid trace JSON"},
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`, "phase"},
		{"missing dur", `{"traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`, "without dur"},
		{"unnamed tid", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":9}]}`, "no thread_name"},
		{"backwards ts", `{"traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}]}`, "backwards"},
		{"partial overlap", `{"traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]}`, "overlaps"},
		{"negative dur", `{"traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"t"}},
			{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`, "negative"},
	}
	for _, tc := range cases {
		err := ValidateChromeTraceJSON([]byte(tc.data))
		if err == nil {
			t.Fatalf("%s: validated", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsNestingAndAdjacency(t *testing.T) {
	data := `{"traceEvents":[
		{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"t"}},
		{"name":"outer","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
		{"name":"in1","ph":"X","ts":0,"dur":40,"pid":1,"tid":1},
		{"name":"in2","ph":"X","ts":40,"dur":60,"pid":1,"tid":1},
		{"name":"leaf","ph":"X","ts":50,"dur":10,"pid":1,"tid":1},
		{"name":"after","ph":"X","ts":100,"dur":5,"pid":1,"tid":1}]}`
	if err := ValidateChromeTraceJSON([]byte(data)); err != nil {
		t.Fatalf("valid nesting rejected: %v", err)
	}
}

func TestFlameSummary(t *testing.T) {
	out := FlameSummary(sampleTracer())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 5 spans with distinct (cat, name) pairs
		t.Fatalf("got %d rows:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "job:wc") || !strings.Contains(out, "#") {
		t.Fatalf("flame summary content:\n%s", out)
	}
	// Busiest row carries the full-width bar and 100%.
	if !strings.Contains(lines[0], "100.0%") {
		t.Fatalf("first row not the busiest:\n%s", out)
	}
}
