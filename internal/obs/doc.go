// Package obs is the repository's zero-dependency observability layer:
// hierarchical spans plus a metrics registry, exportable as Chrome
// trace-event JSON (chrome://tracing, ui.perfetto.dev) and as a compact
// text flamegraph.
//
// # Span model
//
// A Span is a named interval on a Track. Tracks model the hardware the
// MapReduce substrate simulates: one track per cluster task slot
// ("node3/s1", see cluster.SlotTrack) plus a "driver" track for
// job-level work (job and phase spans, shuffle fetches, driver-side
// algorithm phases). Spans on one track must nest or be disjoint — the
// invariant ValidateChromeTraceJSON enforces — which the engine
// guarantees by construction: a slot runs one attempt at a time, and the
// driver's phases are sequential.
//
// # Two clocks
//
// Span timestamps are offsets (time.Duration) from the tracer's epoch,
// on one of two clocks:
//
//   - Wall clock: Start/StartAt helpers stamp spans with time.Since the
//     tracer's creation. Used for real concurrent runs.
//   - Virtual clock: fault-schedule runs (mapreduce.FaultPlan) compute
//     span boundaries on their deterministic event clock and record them
//     with explicit offsets via Record. VirtualBase/AdvanceVirtualBase
//     serialize consecutive virtual jobs onto one timeline so their
//     spans never collide.
//
// A tracer never mixes clocks: the engine emits wall spans only on the
// concurrent path and virtual spans only on the fault-schedule path, so
// a FaultPlan run's trace is bit-for-bit reproducible from its seed.
//
// # Pay-for-use
//
// Every method is safe on a nil *Tracer and nil *Registry and returns
// immediately, so instrumented code calls straight through without
// guarding call sites; a disabled (nil) tracer costs a few nanoseconds
// per call site, verified against BenchmarkShuffle in internal/mapreduce.
package obs
