package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Registry is a metrics registry: named counters, gauges, and log-scale
// histograms. A nil *Registry is the disabled registry — every method
// returns immediately — so call sites chase tr.Metrics() without guards.
//
// Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*histogram
}

// NewRegistry creates an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*histogram),
	}
}

// Count adds delta to the named counter.
func (r *Registry) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the current value of the named counter (0 when the
// counter has never been incremented or the registry is disabled). It is
// the cheap point lookup for hot read paths — unlike Snapshot it copies
// and sorts nothing.
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge sets the named gauge to its latest value.
func (r *Registry) Gauge(name string, value int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = value
	r.mu.Unlock()
}

// Observe records one sample in the named log-scale histogram. Negative
// samples clamp to zero.
func (r *Registry) Observe(name string, sample int64) {
	if r == nil {
		return
	}
	if sample < 0 {
		sample = 0
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.observe(sample)
	r.mu.Unlock()
}

// histogram buckets samples by bit length: bucket i holds samples whose
// value has bit length i, i.e. [2^(i-1), 2^i) for i ≥ 1 and {0} for
// i = 0. Power-of-two buckets cover the nanosecond-to-minutes and
// byte-to-gigabyte ranges in 64 fixed slots with no configuration.
type histogram struct {
	buckets [65]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

func (h *histogram) observe(v int64) {
	h.buckets[bits.Len64(uint64(v))]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// quantile returns an upper bound for the q-quantile: the top edge of
// the bucket holding the q·count-th sample (exact for min/max samples
// seen, within 2× otherwise).
func (h *histogram) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count-1)))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			if i == 0 {
				return 0
			}
			hi := int64(1)<<uint(i) - 1
			if hi > h.max {
				hi = h.max
			}
			if lo := h.min; hi < lo {
				hi = lo
			}
			return hi
		}
	}
	return h.max
}

// HistSummary is the exported summary of one histogram. Quantiles are
// bucket upper bounds (within 2× of the true value); Min, Max, Sum, and
// Mean are exact.
type HistSummary struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
}

// MetricValue is one named counter or gauge value.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// MetricsSnapshot is a point-in-time copy of a registry, every section
// sorted by name so serialization is deterministic.
type MetricsSnapshot struct {
	Counters   []MetricValue `json:"counters,omitempty"`
	Gauges     []MetricValue `json:"gauges,omitempty"`
	Histograms []HistSummary `json:"histograms,omitempty"`
}

// Snapshot returns a sorted copy of the registry (zero-value snapshot
// when disabled).
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: v})
	}
	for name, v := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: v})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistSummary{
			Name:  name,
			Count: h.count,
			Sum:   h.sum,
			Min:   h.min,
			Max:   h.max,
			Mean:  h.sum / h.count,
			P50:   h.quantile(0.50),
			P95:   h.quantile(0.95),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// String renders the snapshot as aligned text, one metric per line.
func (s MetricsSnapshot) String() string {
	var out []byte
	for _, c := range s.Counters {
		out = append(out, fmt.Sprintf("counter %-32s %d\n", c.Name, c.Value)...)
	}
	for _, g := range s.Gauges {
		out = append(out, fmt.Sprintf("gauge   %-32s %d\n", g.Name, g.Value)...)
	}
	for _, h := range s.Histograms {
		out = append(out, fmt.Sprintf("hist    %-32s n=%d sum=%d min=%d mean=%d p50=%d p95=%d max=%d\n",
			h.Name, h.Count, h.Sum, h.Min, h.Mean, h.P50, h.P95, h.Max)...)
	}
	return string(out)
}
