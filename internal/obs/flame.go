package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// flameRow aggregates all spans sharing a category and name.
type flameRow struct {
	cat   string
	name  string
	count int
	total time.Duration
}

// maxFlameRowsPerCat bounds each category's rows in FlameSummary; a run
// with per-task span names would otherwise print one near-zero row per
// task. Suppressed rows are summarized in a single "(n more)" line.
const maxFlameRowsPerCat = 12

// FlameSummary renders the tracer's spans as a compact text flamegraph:
// one row per (category, name) pair with invocation count, summed
// duration, share of the busiest row, and a proportional bar. Rows sort
// by category, then summed duration descending; each category shows at
// most its top maxFlameRowsPerCat rows, with the tail folded into one
// "(n more)" line. Aggregation across tracks keeps the summary readable
// at any cluster size; open the Chrome trace for the per-slot timeline.
// A nil tracer yields an empty string.
func FlameSummary(t *Tracer) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	idx := make(map[[2]string]int)
	rows := make([]flameRow, 0, 16)
	for _, s := range spans {
		key := [2]string{s.Cat, s.Name}
		i, ok := idx[key]
		if !ok {
			i = len(rows)
			idx[key] = i
			rows = append(rows, flameRow{cat: s.Cat, name: s.Name})
		}
		rows[i].count++
		rows[i].total += s.End - s.Start
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cat != rows[j].cat {
			return rows[i].cat < rows[j].cat
		}
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	var widest time.Duration
	for _, r := range rows {
		if r.total > widest {
			widest = r.total
		}
	}
	const barW = 40
	var b strings.Builder
	for i := 0; i < len(rows); {
		j := i
		for j < len(rows) && rows[j].cat == rows[i].cat {
			j++
		}
		shown := j
		if j-i > maxFlameRowsPerCat {
			shown = i + maxFlameRowsPerCat
		}
		for _, r := range rows[i:shown] {
			frac := float64(r.total) / float64(widest)
			bar := strings.Repeat("#", int(frac*barW+0.5))
			fmt.Fprintf(&b, "%-8s %-28s %6dx %14v %5.1f%% %s\n",
				r.cat, r.name, r.count, r.total.Round(time.Microsecond), frac*100, bar)
		}
		if shown < j {
			rest := flameRow{}
			for _, r := range rows[shown:j] {
				rest.count += r.count
				rest.total += r.total
			}
			fmt.Fprintf(&b, "%-8s %-28s %6dx %14v\n",
				rows[i].cat, fmt.Sprintf("(%d more)", j-shown), rest.count,
				rest.total.Round(time.Microsecond))
		}
		i = j
	}
	return b.String()
}
