package obs

import (
	"sort"
	"sync"
	"time"
)

// DriverTrack is the track for driver-side work: job and phase spans,
// shuffle fetches, and driver-side algorithm phases.
const DriverTrack = "driver"

// Span categories used by the engine's instrumentation. Free-form strings
// are legal; these are the ones the substrate emits.
const (
	CatJob     = "job"     // one whole MapReduce job
	CatPhase   = "phase"   // map / shuffle / reduce phase of a job
	CatSlot    = "slot"    // slot occupancy: acquire → release
	CatTask    = "task"    // one task attempt's body
	CatShuffle = "shuffle" // one reducer's shuffle fetch
	CatAlgo    = "algo"    // algorithm phase (grid build, local skyline, merge)
	CatQueue   = "queue"   // admission-controller wait: submit → admitted/rejected
)

// Arg is one key-value annotation on a span. Values are strings so span
// serialization is deterministic (no float formatting surprises).
type Arg struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one named interval on a track. Start and End are offsets from
// the tracer's epoch on the active clock (wall or virtual; see the
// package comment).
type Span struct {
	Track string
	Name  string
	Cat   string
	Start time.Duration
	End   time.Duration
	Args  []Arg
}

// Tracer records spans and metrics. The zero value is not usable; create
// with New. A nil *Tracer is the disabled tracer: every method returns
// immediately, so instrumentation sites need no guards.
//
// Tracer is safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
	vbase time.Duration
	reg   *Registry
}

// New creates an enabled tracer whose wall epoch is the moment of the
// call.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), reg: NewRegistry()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the wall-clock offset from the tracer's epoch (zero when
// disabled).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Metrics returns the tracer's metrics registry (nil when disabled; all
// Registry methods are nil-safe, so the chain tr.Metrics().Observe(...)
// needs no guard).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// ResetMetrics replaces the metrics registry with a fresh one, so a
// caller sharing one tracer across measurement units (e.g. one BENCH
// record per figure) can snapshot per-unit metrics while spans keep
// accumulating on the shared timeline.
func (t *Tracer) ResetMetrics() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reg = NewRegistry()
	t.mu.Unlock()
}

// Record stores a span with explicit timestamps — the entry point for
// virtual-clock instrumentation. Spans with End < Start are clamped to
// zero duration.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// SpanRef is an in-flight wall-clock span started by Start; End (or
// EndWith) records it. The zero SpanRef is a no-op.
type SpanRef struct {
	t     *Tracer
	track string
	name  string
	cat   string
	start time.Duration
	args  []Arg
}

// Start opens a wall-clock span now. The returned SpanRef must be ended
// exactly once; a SpanRef from a nil tracer is inert.
func (t *Tracer) Start(track, name, cat string, args ...Arg) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t: t, track: track, name: name, cat: cat, start: t.Now(), args: args}
}

// End records the span, closing it now.
func (r SpanRef) End() { r.EndWith() }

// EndWith records the span with extra args appended.
func (r SpanRef) EndWith(args ...Arg) {
	if r.t == nil {
		return
	}
	r.t.Record(Span{
		Track: r.track, Name: r.name, Cat: r.cat,
		Start: r.start, End: r.t.Now(),
		Args: append(r.args, args...),
	})
}

// Timed opens a wall-clock span and returns a closer that ends it and
// records the elapsed time in the named histogram — the one-liner for
// bracketing an algorithm phase:
//
//	defer tr.Timed(track, "merge", CatAlgo, "algo.merge.ns")()
//
// On a nil tracer the returned closer is free.
func (t *Tracer) Timed(track, name, cat, metric string) func() {
	if t == nil {
		return func() {}
	}
	sp := t.Start(track, name, cat)
	t0 := time.Now()
	return func() {
		t.Metrics().Observe(metric, int64(time.Since(t0)))
		sp.End()
	}
}

// VirtualBase returns the current virtual-clock base offset. A
// fault-schedule job records every span at base+t for its local virtual
// time t, then advances the base past its makespan, so consecutive
// virtual jobs occupy disjoint windows of one timeline.
func (t *Tracer) VirtualBase() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vbase
}

// AdvanceVirtualBase raises the virtual base to at least end (absolute,
// i.e. already including the previous base). Smaller values are ignored.
func (t *Tracer) AdvanceVirtualBase(end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if end > t.vbase {
		t.vbase = end
	}
	t.mu.Unlock()
}

// Spans returns a copy of all recorded spans ordered by track, then
// start time, then descending duration (so a parent sorts before the
// children it contains), then name.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		di, dj := out[i].End-out[i].Start, out[j].End-out[j].Start
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
